/**
 * @file
 * Chrome trace-event JSON emitter.
 *
 * Records complete ("ph":"X") and instant ("ph":"i") events plus
 * thread-name metadata and writes them as the JSON-object trace format
 * that chrome://tracing and Perfetto load directly:
 *
 *   {"traceEvents": [
 *     {"name":"evaluate","cat":"eval","ph":"X","ts":12.5,"dur":400.1,
 *      "pid":1,"tid":2,"args":{"generation":3}}, ...]}
 *
 * Timestamps are microseconds on the same monotonic timebase as
 * stats::nowUs(), so instrumentation sites take one clock reading and
 * share it between a stats histogram and a trace event. Recording is
 * thread safe (evaluation workers emit concurrently); events are
 * buffered in memory and written once by finish() or the destructor.
 *
 * Validated by tools/check_trace.py, which ctest runs against a real
 * `gest run --trace` artifact.
 */

#ifndef GEST_OUTPUT_TRACE_WRITER_HH
#define GEST_OUTPUT_TRACE_WRITER_HH

#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gest {
namespace output {

/** Collects trace events and writes one Chrome trace JSON file. */
class TraceWriter
{
  public:
    /** Numeric event arguments shown in the Perfetto detail pane. */
    using Args = std::vector<std::pair<std::string, double>>;

    /** Events are timestamped relative to construction time. */
    explicit TraceWriter(std::string path);

    /** Writes the file if finish() has not run yet (best effort). */
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /** Microseconds since this trace's epoch (its construction). */
    double nowUs() const;

    /**
     * Record a complete event spanning [ts_us, ts_us + dur_us).
     * @p ts_us is on the stats::nowUs() timebase — instrumentation
     * sites read that clock once and hand the reading to both a stats
     * histogram and this writer; the conversion to trace-relative time
     * happens here.
     */
    void completeEvent(const std::string& name, const std::string& cat,
                       int tid, double ts_us, double dur_us,
                       Args args = {});

    /** Record an instant event at the current time. */
    void instantEvent(const std::string& name, const std::string& cat,
                      int tid, Args args = {});

    /** Name a trace thread id (metadata event), e.g. "worker-0". */
    void setThreadName(int tid, const std::string& name);

    /** Number of events recorded so far (metadata included). */
    std::size_t eventCount() const;

    /** Serialize and write the file; idempotent. fatal() on I/O error. */
    void finish();

    /** The output path. */
    const std::string& path() const { return _path; }

    /** Render the current event buffer as trace JSON (tests). */
    std::string toJson() const;

  private:
    struct Event
    {
        char phase;
        std::string name;
        std::string cat;
        int tid;
        double ts;
        double dur;
        Args args;
    };

    void appendEvent(std::string& out, const Event& event) const;

    std::string _path;
    double _epochUs;
    mutable std::mutex _mutex;
    std::vector<Event> _events;
    bool _finished = false;
};

} // namespace output
} // namespace gest

#endif // GEST_OUTPUT_TRACE_WRITER_HH
