#include "output/flight_recorder.hh"

#include <algorithm>
#include <cstdio>

#include "signal/waveform_io.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"

namespace gest {
namespace output {

FlightRecorder::FlightRecorder(
    std::string run_dir, int top_k,
    std::unique_ptr<measure::Measurement> measurement)
    : _runDir(std::move(run_dir)),
      _topK(static_cast<std::size_t>(top_k)),
      _measurement(std::move(measurement))
{
    if (top_k < 1)
        fatal("flight recorder needs top_k >= 1, got ", top_k);
    if (!_measurement)
        fatal("flight recorder needs a measurement instance");
}

bool
FlightRecorder::qualifies(double fitness) const
{
    if (_entries.size() < _topK)
        return true;
    return fitness > _entries.back().fitness;
}

bool
FlightRecorder::contains(std::uint64_t id) const
{
    for (const Entry& e : _entries) {
        if (e.id == id)
            return true;
    }
    return false;
}

void
FlightRecorder::onGenerationEvaluated(const core::Population& pop,
                                      const core::GenerationRecord& record)
{
    for (const core::Individual& ind : pop.individuals) {
        if (!ind.evaluated || !qualifies(ind.fitness) ||
            contains(ind.id))
            continue;

        // One instrumented re-run on the private clone. The simulated
        // targets are deterministic, so this reproduces exactly the
        // measurement the GA already scored — now with signals.
        Entry entry;
        entry.id = ind.id;
        entry.generation = record.generation;
        entry.fitness = ind.fitness;
        // Retained for seal-time attribution (<output
        // attribution="true"/>): champions may no longer be in the
        // final population when the run ends.
        entry.code = ind.code;
        entry.measurements =
            _measurement->measureWithProbe(ind.code, &entry.probe)
                .values;
        ++_captures;

        // Insert keeping strongest-first order, then trim to the bound.
        const auto pos = std::upper_bound(
            _entries.begin(), _entries.end(), entry.fitness,
            [](double f, const Entry& e) { return f > e.fitness; });
        _entries.insert(pos, std::move(entry));
        if (_entries.size() > _topK)
            _entries.pop_back();
    }
}

std::vector<std::string>
FlightRecorder::seal()
{
    const std::string dir = _runDir + "/waveforms";
    ensureDir(dir);

    std::vector<std::string> files;
    std::string index = "# gest-waveform-index v1\n"
                        "rank,id,generation,fitness,csv,json,spectrum\n";
    int rank = 1;
    for (const Entry& e : _entries) {
        const std::string basename = std::to_string(e.id);
        const signal::WaveformArtifacts art =
            signal::writeWaveformArtifacts(dir, basename, e.probe);
        char fitness_text[40];
        std::snprintf(fitness_text, sizeof(fitness_text), "%.17g",
                      e.fitness);
        index += std::to_string(rank) + "," + std::to_string(e.id) +
                 "," + std::to_string(e.generation) + "," +
                 fitness_text + "," + basename + ".csv," + basename +
                 ".json," +
                 (art.spectrumPath.empty()
                      ? std::string()
                      : basename + "_spectrum.csv") +
                 "\n";
        files.push_back(art.csvPath);
        files.push_back(art.jsonPath);
        if (!art.spectrumPath.empty())
            files.push_back(art.spectrumPath);
        ++rank;
    }
    const std::string index_path = dir + "/index.csv";
    writeFile(index_path, index);
    files.insert(files.begin(), index_path);
    debug("flight recorder sealed ", _entries.size(),
          " captures into ", dir);
    return files;
}

} // namespace output
} // namespace gest
