#include "pdn/spectrum.hh"

#include <cmath>

#include "util/logging.hh"

namespace gest {
namespace pdn {

namespace {
constexpr double pi = 3.14159265358979323846;
} // namespace

double
toneAmplitude(const std::vector<double>& samples, double sample_rate_hz,
              double tone_hz)
{
    // Goertzel needs no power-of-two length; any n works. Below two
    // samples there is no AC content to estimate — the one sample is
    // its own mean — so return 0 explicitly.
    if (samples.size() < 2)
        return 0.0;
    if (sample_rate_hz <= 0.0 || tone_hz < 0.0)
        fatal("toneAmplitude needs a positive sample rate and a "
              "non-negative tone frequency");
    if (tone_hz * 2.0 > sample_rate_hz)
        fatal("tone ", tone_hz, " Hz is above Nyquist for sample rate ",
              sample_rate_hz, " Hz");

    const std::size_t n = samples.size();
    double mean = 0.0;
    for (double s : samples)
        mean += s;
    mean /= static_cast<double>(n);

    // Goertzel recurrence on the mean-removed signal.
    const double omega = 2.0 * pi * tone_hz / sample_rate_hz;
    const double coeff = 2.0 * std::cos(omega);
    double s_prev = 0.0;
    double s_prev2 = 0.0;
    for (double sample : samples) {
        const double s = (sample - mean) + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    const double power = s_prev * s_prev + s_prev2 * s_prev2 -
                         coeff * s_prev * s_prev2;
    // Scale to the sinusoid amplitude: |X(k)| * 2 / N.
    return 2.0 * std::sqrt(power < 0.0 ? 0.0 : power) /
           static_cast<double>(n);
}

std::vector<double>
amplitudeSpectrum(const std::vector<double>& samples,
                  double sample_rate_hz,
                  const std::vector<double>& tones_hz)
{
    std::vector<double> out;
    out.reserve(tones_hz.size());
    for (double tone : tones_hz)
        out.push_back(toneAmplitude(samples, sample_rate_hz, tone));
    return out;
}

double
dominantTone(const std::vector<double>& samples, double sample_rate_hz,
             double lo_hz, double hi_hz, int steps)
{
    if (steps < 2 || hi_hz <= lo_hz)
        fatal("dominantTone needs steps >= 2 and hi > lo");
    if (sample_rate_hz <= 0.0)
        fatal("dominantTone needs a positive sample rate");
    // Clamp the scan under Nyquist instead of letting the first
    // above-Nyquist tone abort the whole sweep.
    if (hi_hz > sample_rate_hz / 2.0)
        hi_hz = sample_rate_hz / 2.0;
    if (hi_hz <= lo_hz)
        fatal("dominantTone scan band [", lo_hz, ", ", hi_hz,
              "] Hz is empty after clamping to Nyquist for sample "
              "rate ", sample_rate_hz, " Hz");
    double best_tone = lo_hz;
    double best_amp = -1.0;
    for (int i = 0; i < steps; ++i) {
        const double tone =
            lo_hz + (hi_hz - lo_hz) * i / (steps - 1);
        const double amp = toneAmplitude(samples, sample_rate_hz, tone);
        if (amp > best_amp) {
            best_amp = amp;
            best_tone = tone;
        }
    }
    return best_tone;
}

} // namespace pdn
} // namespace gest
