/**
 * @file
 * Spectral analysis of load-current traces.
 *
 * A dI/dt virus works by concentrating current energy at the PDN's
 * resonance frequency (§II). The Goertzel algorithm extracts the
 * amplitude of a single tone from a per-cycle current trace, which lets
 * benches and tests verify the mechanism directly: the GA virus shows a
 * spectral peak at f_res that sustained power viruses lack.
 */

#ifndef GEST_PDN_SPECTRUM_HH
#define GEST_PDN_SPECTRUM_HH

#include <vector>

namespace gest {
namespace pdn {

/**
 * Amplitude of the @p tone_hz component of @p samples taken at
 * @p sample_rate_hz (Goertzel). The DC component is removed first so a
 * large sustained current does not leak into the bin. Works on any
 * trace length (no power-of-two requirement); traces shorter than two
 * samples have no AC content and return 0. @return the amplitude in
 * the samples' unit (A for current traces).
 */
double toneAmplitude(const std::vector<double>& samples,
                     double sample_rate_hz, double tone_hz);

/** Tone amplitudes for a list of frequencies. */
std::vector<double> amplitudeSpectrum(
    const std::vector<double>& samples, double sample_rate_hz,
    const std::vector<double>& tones_hz);

/**
 * Frequency (Hz) of the strongest component found by scanning
 * [lo_hz, hi_hz] in @p steps steps. A band reaching past Nyquist is
 * clamped to it; fatal() if nothing of the band remains.
 */
double dominantTone(const std::vector<double>& samples,
                    double sample_rate_hz, double lo_hz, double hi_hz,
                    int steps = 64);

} // namespace pdn
} // namespace gest

#endif // GEST_PDN_SPECTRUM_HH
