/**
 * @file
 * Second-order RLC power-delivery-network model.
 *
 * Substitute for the oscilloscope on the Asus M5A78L LE voltage-sense
 * pads (§VI). The package/board PDN is modelled as the classic series
 * R-L feeding the die capacitance, with the CPU drawing its per-cycle
 * load current from the die node:
 *
 *      Vs ──R──L──┬────── v(t)   (die voltage)
 *                 C
 *                 ├── i_load(t)
 *                GND
 *
 * The network has a first-order resonance at f0 = 1/(2*pi*sqrt(LC));
 * periodic current swings at f0 build up the largest droops and
 * overshoots, which is exactly the physics a dI/dt virus exploits. The
 * paper's loop-length rule (instructions = IPC * f_clk / f_res) makes one
 * loop iteration take one resonance period.
 */

#ifndef GEST_PDN_PDN_MODEL_HH
#define GEST_PDN_PDN_MODEL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "util/tiling.hh"

namespace gest {

namespace signal {
class SignalProbe;
} // namespace signal

namespace pdn {

/** Electrical parameters of the PDN. */
struct PdnConfig
{
    std::string name;

    double vdd = 1.35;          ///< nominal supply at the VRM (V)
    double resistanceOhm = 1e-3;
    double inductanceH = 80e-12;
    double capacitanceF = 32e-9;

    /** Integration sub-steps per CPU clock cycle. */
    int substepsPerCycle = 4;

    /** First-order resonance frequency (Hz). */
    double resonanceHz() const;

    /** Quality factor Q = sqrt(L/C) / R. */
    double qFactor() const;

    /** Impedance peak seen by the load at resonance, ~Q^2 * R (ohm). */
    double peakImpedanceOhm() const;

    /**
     * Construct a PDN with a prescribed resonance frequency and Q for a
     * given series resistance.
     */
    static PdnConfig forResonance(std::string name, double vdd,
                                  double resonance_hz, double q,
                                  double resistance_ohm);

    /** Sanity-check; fatal() on non-physical parameters. */
    void validate() const;
};

/** Result of a PDN transient simulation. */
struct VoltageTrace
{
    /** Die voltage per CPU cycle (V). */
    std::vector<double> volts;

    double vMin = 0.0;
    double vMax = 0.0;
    double vAvg = 0.0;

    /** Max minus min — the paper's Figure 8 metric. */
    double peakToPeak() const { return vMax - vMin; }

    /** Worst droop below nominal (V, positive). */
    double worstDroop(double vdd) const { return vdd - vMin; }
};

/**
 * Time-domain PDN simulator.
 */
class PdnModel
{
  public:
    explicit PdnModel(PdnConfig cfg);

    /**
     * Simulate the die voltage for a per-cycle load-current trace.
     *
     * Degenerate inputs have defined results: an empty trace yields a
     * flat trace pinned at the supply (vMin = vMax = vAvg = supply, no
     * samples); a warmup window reaching past the trace is clamped to
     * its first half, so even a single-sample trace produces one
     * measured sample.
     *
     * @param current_amps load current per CPU cycle (A)
     * @param freq_ghz CPU clock in GHz (sets the timestep)
     * @param warmup_cycles cycles excluded from the min/max statistics
     *        while the network settles
     * @param probe when non-null, the die-voltage trace (which the
     *        scalar result otherwise discards) is recorded as the
     *        `pdn_voltage_v` waveform with its warmup window
     */
    VoltageTrace simulate(const std::vector<double>& current_amps,
                          double freq_ghz,
                          std::size_t warmup_cycles = 256,
                          signal::SignalProbe* probe = nullptr) const;

    /**
     * Simulate with the supply voltage overridden to @p vs (for V_MIN
     * sweeps; dynamic current is assumed voltage-independent, which is
     * conservative and documented in DESIGN.md).
     */
    VoltageTrace simulateAt(const std::vector<double>& current_amps,
                            double freq_ghz, double vs,
                            std::size_t warmup_cycles = 256,
                            signal::SignalProbe* probe = nullptr) const;

    /**
     * Simulate over a tiled current trace without materializing it.
     * The integrator still steps every virtual cycle in order — the
     * PDN is stateful, so there is no shortcut — but reads the load
     * current through @p tiling from the flat stored array, and only
     * the scalar summary is produced (VoltageTrace::volts stays
     * empty). Bit-identical to simulate() over the expanded trace.
     *
     * @param current_amps flat array of tiling.storedCycles() samples
     * @param tiling stored-to-virtual trace mapping
     * @param virtual_cycles virtual cycles to step (callers clip to
     *        their trace-capacity bound; <= tiling.virtualCycles())
     */
    VoltageTrace simulateTiled(const double* current_amps,
                               const util::TraceTiling& tiling,
                               std::size_t virtual_cycles,
                               double freq_ghz,
                               std::size_t warmup_cycles = 256) const;

    /** The configuration in use. */
    const PdnConfig& config() const { return _cfg; }

  private:
    PdnConfig _cfg;
};

/** Parameters of the V_MIN characterization loop (§VI). */
struct VminConfig
{
    /** Voltage below which timing fails (V). */
    double vCritical = 1.05;

    /** Supply step used in the paper: 12.5 mV. */
    double stepVolts = 0.0125;

    /** Starting (nominal) supply (V). */
    double vNominal = 1.35;
};

/**
 * Characterize a workload's V_MIN exactly the way the paper does: run at
 * progressively lower supply voltages in 12.5 mV steps and report the
 * lowest supply at which the minimum die voltage still clears the
 * critical timing voltage.
 */
class VminModel
{
  public:
    VminModel(const PdnModel& pdn, VminConfig cfg);

    /**
     * @return the workload's V_MIN (V). If even the nominal voltage
     * fails, returns vNominal.
     */
    double characterize(const std::vector<double>& current_amps,
                        double freq_ghz) const;

    /** The sweep configuration. */
    const VminConfig& config() const { return _cfg; }

  private:
    const PdnModel& _pdn;
    VminConfig _cfg;
};

/** PDN preset for the Athlon II / Asus M5A78L LE system. */
PdnConfig athlonPdn();

} // namespace pdn
} // namespace gest

#endif // GEST_PDN_PDN_MODEL_HH
