#include "pdn/pdn_model.hh"

#include <cmath>
#include <limits>

#include "signal/signal_probe.hh"
#include "util/logging.hh"

namespace gest {
namespace pdn {

namespace {
constexpr double pi = 3.14159265358979323846;
} // namespace

double
PdnConfig::resonanceHz() const
{
    return 1.0 / (2.0 * pi * std::sqrt(inductanceH * capacitanceF));
}

double
PdnConfig::qFactor() const
{
    return std::sqrt(inductanceH / capacitanceF) / resistanceOhm;
}

double
PdnConfig::peakImpedanceOhm() const
{
    // Series RLC seen from the load: |Z| at resonance is L / (R * C).
    return inductanceH / (resistanceOhm * capacitanceF);
}

PdnConfig
PdnConfig::forResonance(std::string name, double vdd, double resonance_hz,
                        double q, double resistance_ohm)
{
    // Q = sqrt(L/C)/R and w0 = 1/sqrt(LC) give
    //   L = Q * R / w0   and   C = 1 / (Q * R * w0).
    PdnConfig cfg;
    cfg.name = std::move(name);
    cfg.vdd = vdd;
    cfg.resistanceOhm = resistance_ohm;
    const double w0 = 2.0 * pi * resonance_hz;
    cfg.inductanceH = q * resistance_ohm / w0;
    cfg.capacitanceF = 1.0 / (q * resistance_ohm * w0);
    cfg.validate();
    return cfg;
}

void
PdnConfig::validate() const
{
    if (vdd <= 0.0 || resistanceOhm <= 0.0 || inductanceH <= 0.0 ||
        capacitanceF <= 0.0)
        fatal("PDN '", name, "': non-physical electrical parameters");
    if (substepsPerCycle < 1)
        fatal("PDN '", name, "': need at least one integration substep");
}

PdnModel::PdnModel(PdnConfig cfg) : _cfg(std::move(cfg))
{
    _cfg.validate();
}

VoltageTrace
PdnModel::simulate(const std::vector<double>& current_amps,
                   double freq_ghz, std::size_t warmup_cycles,
                   signal::SignalProbe* probe) const
{
    return simulateAt(current_amps, freq_ghz, _cfg.vdd, warmup_cycles,
                      probe);
}

VoltageTrace
PdnModel::simulateAt(const std::vector<double>& current_amps,
                     double freq_ghz, double vs,
                     std::size_t warmup_cycles,
                     signal::SignalProbe* probe) const
{
    if (freq_ghz <= 0.0)
        fatal("PDN simulation needs a positive clock frequency");

    VoltageTrace out;
    out.volts.reserve(current_amps.size());
    if (current_amps.empty()) {
        // No load samples: the die sits at the supply. Keep every
        // summary field defined so downstream consumers (Vmin sweeps,
        // fitness functions) never read uninitialized state.
        out.vMin = out.vMax = out.vAvg = vs;
        return out;
    }
    if (warmup_cycles >= current_amps.size())
        warmup_cycles = current_amps.size() / 2;

    const double dt =
        1e-9 / freq_ghz / static_cast<double>(_cfg.substepsPerCycle);
    const double r = _cfg.resistanceOhm;
    const double l = _cfg.inductanceH;
    const double c = _cfg.capacitanceF;

    // Start at the DC operating point for the first sample's current so
    // the transient begins settled.
    double i_l = current_amps.front();
    double v_c = vs - r * i_l;

    double v_min = std::numeric_limits<double>::max();
    double v_max = -std::numeric_limits<double>::max();
    double v_sum = 0.0;
    std::size_t measured = 0;

    for (std::size_t cycle = 0; cycle < current_amps.size(); ++cycle) {
        const double i_load = current_amps[cycle];
        // Semi-implicit (symplectic) Euler keeps the oscillator stable
        // at the modest substep counts we use.
        for (int s = 0; s < _cfg.substepsPerCycle; ++s) {
            i_l += dt * (vs - v_c - r * i_l) / l;
            v_c += dt * (i_l - i_load) / c;
        }
        out.volts.push_back(v_c);
        if (cycle >= warmup_cycles) {
            v_min = std::min(v_min, v_c);
            v_max = std::max(v_max, v_c);
            v_sum += v_c;
            ++measured;
        }
    }

    if (measured == 0) {
        // Unreachable with the warmup clamp above (any non-empty trace
        // measures at least its second half), but kept as a defined
        // fallback rather than UB if the clamp policy ever changes.
        out.vMin = out.vMax = out.vAvg = out.volts.back();
    } else {
        out.vMin = v_min;
        out.vMax = v_max;
        out.vAvg = v_sum / static_cast<double>(measured);
    }
    if (probe) {
        probe->recordWaveform("pdn_voltage_v", "V", freq_ghz * 1e9,
                              out.volts, warmup_cycles);
    }
    return out;
}

VoltageTrace
PdnModel::simulateTiled(const double* current_amps,
                        const util::TraceTiling& tiling,
                        std::size_t virtual_cycles, double freq_ghz,
                        std::size_t warmup_cycles) const
{
    if (freq_ghz <= 0.0)
        fatal("PDN simulation needs a positive clock frequency");

    const double vs = _cfg.vdd;
    VoltageTrace out;
    if (virtual_cycles == 0) {
        out.vMin = out.vMax = out.vAvg = vs;
        return out;
    }
    if (warmup_cycles >= virtual_cycles)
        warmup_cycles = virtual_cycles / 2;

    const double dt =
        1e-9 / freq_ghz / static_cast<double>(_cfg.substepsPerCycle);
    const double r = _cfg.resistanceOhm;
    const double l = _cfg.inductanceH;
    const double c = _cfg.capacitanceF;

    double i_l = current_amps[0];
    double v_c = vs - r * i_l;

    double v_min = std::numeric_limits<double>::max();
    double v_max = -std::numeric_limits<double>::max();
    double v_sum = 0.0;
    std::size_t measured = 0;

    for (std::size_t cycle = 0; cycle < virtual_cycles; ++cycle) {
        const double i_load =
            current_amps[tiling.storedIndex(cycle)];
        for (int s = 0; s < _cfg.substepsPerCycle; ++s) {
            i_l += dt * (vs - v_c - r * i_l) / l;
            v_c += dt * (i_l - i_load) / c;
        }
        if (cycle >= warmup_cycles) {
            v_min = std::min(v_min, v_c);
            v_max = std::max(v_max, v_c);
            v_sum += v_c;
            ++measured;
        }
    }

    if (measured == 0) {
        out.vMin = out.vMax = out.vAvg = v_c;
    } else {
        out.vMin = v_min;
        out.vMax = v_max;
        out.vAvg = v_sum / static_cast<double>(measured);
    }
    return out;
}

VminModel::VminModel(const PdnModel& pdn, VminConfig cfg)
    : _pdn(pdn), _cfg(cfg)
{
    if (_cfg.stepVolts <= 0.0)
        fatal("Vmin sweep step must be positive");
    if (_cfg.vCritical >= _cfg.vNominal)
        fatal("Vmin sweep: critical voltage ", _cfg.vCritical,
              " is not below nominal ", _cfg.vNominal);
}

double
VminModel::characterize(const std::vector<double>& current_amps,
                        double freq_ghz) const
{
    // Lower the supply in fixed steps, exactly like the paper's
    // procedure, and report the lowest passing voltage.
    double last_pass = _cfg.vNominal;
    bool any_pass = false;
    for (double vs = _cfg.vNominal; vs > _cfg.vCritical - 1e-12;
         vs -= _cfg.stepVolts) {
        const VoltageTrace trace =
            _pdn.simulateAt(current_amps, freq_ghz, vs);
        if (trace.vMin < _cfg.vCritical)
            break;
        last_pass = vs;
        any_pass = true;
    }
    if (!any_pass)
        warn("workload fails even at nominal supply ", _cfg.vNominal,
             " V; reporting nominal as Vmin");
    return last_pass;
}

PdnConfig
athlonPdn()
{
    // ~100 MHz first-order resonance with Q ~ 2.2 and 1 mOhm of loop
    // resistance: a typical desktop package/board combination and close
    // to the band AUDIT reports for AMD parts.
    PdnConfig cfg = PdnConfig::forResonance("athlon-asus-m5a78l", 1.35,
                                            100e6, 2.2, 1.0e-3);
    return cfg;
}

} // namespace pdn
} // namespace gest
