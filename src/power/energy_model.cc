#include "power/energy_model.hh"

namespace gest {
namespace power {

using isa::InstrClass;

double
EnergyModel::leakageWatts(double temp_c, double vdd) const
{
    const double temp_factor =
        1.0 + leakageTempCoeff * (temp_c - leakageRefTempC);
    const double v_factor = (vdd / vddNominal) * (vdd / vddNominal);
    return leakageRefWatts * (temp_factor < 0.1 ? 0.1 : temp_factor) *
           v_factor;
}

double
EnergyModel::dynamicScale(double vdd) const
{
    const double ratio = vdd / vddNominal;
    return ratio * ratio;
}

EnergyModel
cortexA15Energy()
{
    EnergyModel em;
    em.name = "cortex-a15";
    // Big out-of-order core: wide NEON datapath dominates; integer ops
    // are comparatively cheap; the branch unit is a small slice.
    em.setEpi(InstrClass::ShortInt, 0.15);
    em.setEpi(InstrClass::LongInt, 0.34);
    em.setEpi(InstrClass::FloatSimd, 0.58);
    em.setEpi(InstrClass::Mem, 0.42);
    em.setEpi(InstrClass::Branch, 0.12);
    em.setEpi(InstrClass::Nop, 0.02);
    em.togglePerBitNj = 0.0022;
    em.fetchPerInstrNj = 0.08;
    em.windowPerEntryCycleNj = 0.004;
    em.cacheMissNj = 2.0;
    em.mispredictNj = 1.6;
    em.clockPerCycleNj = 0.26;
    em.vddNominal = 1.05;
    em.leakageRefWatts = 0.16;
    return em;
}

EnergyModel
cortexA7Energy()
{
    EnergyModel em;
    em.name = "cortex-a7";
    // LITTLE in-order core: fetch/predict is a large share of total
    // power, so taken branches are comparatively expensive events, while
    // the narrow 64-bit NEON path caps FP energy throughput.
    em.setEpi(InstrClass::ShortInt, 0.055);
    em.setEpi(InstrClass::LongInt, 0.115);
    em.setEpi(InstrClass::FloatSimd, 0.135);
    em.setEpi(InstrClass::Mem, 0.105);
    em.setEpi(InstrClass::Branch, 0.155);
    em.setEpi(InstrClass::Nop, 0.008);
    em.togglePerBitNj = 0.0008;
    em.fetchPerInstrNj = 0.035;
    em.windowPerEntryCycleNj = 0.0008;
    em.cacheMissNj = 1.2;
    em.mispredictNj = 0.5;
    em.clockPerCycleNj = 0.055;
    em.vddNominal = 1.0;
    em.leakageRefWatts = 0.035;
    return em;
}

EnergyModel
xgene2Energy()
{
    EnergyModel em;
    em.name = "xgene2";
    // Server-class core: the load/store path (big L1, DTLB, store
    // buffers) is expensive, and the issue queue / dependency tracking
    // contributes a visible per-entry-per-cycle cost.
    em.setEpi(InstrClass::ShortInt, 0.14);
    em.setEpi(InstrClass::LongInt, 0.23);
    em.setEpi(InstrClass::FloatSimd, 0.28);
    em.setEpi(InstrClass::Mem, 0.37);
    em.setEpi(InstrClass::Branch, 0.075);
    em.setEpi(InstrClass::Nop, 0.015);
    em.togglePerBitNj = 0.0010;
    em.fetchPerInstrNj = 0.05;
    em.windowPerEntryCycleNj = 0.0065;
    em.cacheMissNj = 1.5;
    em.l2MissNj = 6.0;
    em.mispredictNj = 1.0;
    em.clockPerCycleNj = 0.21;
    em.vddNominal = 0.98;
    em.leakageRefWatts = 0.85;
    return em;
}

EnergyModel
athlonX4Energy()
{
    EnergyModel em;
    em.name = "athlon-x4-645";
    // 45 nm desktop core at 3.1 GHz: big absolute energies, wide K10
    // FPU; current swings between FP bursts and NOPs are what the dI/dt
    // search exploits.
    em.setEpi(InstrClass::ShortInt, 0.28);
    em.setEpi(InstrClass::LongInt, 0.55);
    em.setEpi(InstrClass::FloatSimd, 0.95);
    em.setEpi(InstrClass::Mem, 0.60);
    em.setEpi(InstrClass::Branch, 0.22);
    em.setEpi(InstrClass::Nop, 0.05);
    em.togglePerBitNj = 0.0030;
    em.fetchPerInstrNj = 0.12;
    em.windowPerEntryCycleNj = 0.005;
    em.cacheMissNj = 3.5;
    em.mispredictNj = 2.5;
    em.clockPerCycleNj = 0.9;
    em.vddNominal = 1.35;
    em.leakageRefWatts = 4.0;
    em.leakageRefTempC = 60.0;
    return em;
}

} // namespace power
} // namespace gest
