/**
 * @file
 * Converts a simulator activity trace into power and current traces.
 */

#ifndef GEST_POWER_POWER_MODEL_HH
#define GEST_POWER_POWER_MODEL_HH

#include <vector>

#include "arch/trace.hh"
#include "power/energy_model.hh"

namespace gest {

namespace signal {
class SignalProbe;
} // namespace signal

namespace power {

/** Per-cycle power trace plus summary statistics. */
struct PowerTrace
{
    /** Total power per cycle (W), dynamic plus leakage. */
    std::vector<double> watts;

    double avgWatts = 0.0;
    double peakWatts = 0.0;
    double minWatts = 0.0;

    /** Core clock frequency the trace was produced at (GHz). */
    double freqGHz = 1.0;

    /** Supply voltage used (V). */
    double vdd = 1.0;

    /** Per-cycle load current trace (A): watts / vdd. */
    std::vector<double> currentAmps() const;
};

/**
 * Stateless evaluator binding an EnergyModel to a clock frequency.
 */
class PowerModel
{
  public:
    PowerModel(EnergyModel em, double freq_ghz);

    /**
     * Compute the full per-cycle power trace for a simulation result.
     *
     * @param sim simulator output
     * @param vdd supply voltage (V)
     * @param temp_c die temperature for the leakage term (degrees C)
     * @param probe when non-null, the per-cycle core power and current
     *        are recorded as the `core_power_w` / `core_current_a`
     *        waveforms (capture only; the returned trace is unchanged)
     */
    PowerTrace trace(const arch::SimResult& sim, double vdd,
                     double temp_c,
                     signal::SignalProbe* probe = nullptr) const;

    /**
     * trace() into caller-owned storage: @p out is cleared but keeps
     * its capacity, so repeated evaluations over same-sized traces
     * allocate nothing. Produces exactly the rows of sim.trace; on a
     * tiled result that is the [prefix | period | tail] layout, with
     * sim.tiling describing how to expand it.
     */
    void traceInto(const arch::SimResult& sim, double vdd, double temp_c,
                   signal::SignalProbe* probe, PowerTrace& out) const;

    /** Average power without materializing the trace (fast path). */
    double averageWatts(const arch::SimResult& sim, double vdd,
                        double temp_c) const;

    /** The energy model in use. */
    const EnergyModel& energyModel() const { return _em; }

    /** The clock frequency in GHz. */
    double freqGHz() const { return _freqGHz; }

  private:
    /** Dynamic energy of one cycle record in nJ, at nominal voltage. */
    double cycleEnergyNj(const arch::CycleStats& stats) const;

    EnergyModel _em;
    double _freqGHz;
};

} // namespace power
} // namespace gest

#endif // GEST_POWER_POWER_MODEL_HH
