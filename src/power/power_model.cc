#include "power/power_model.hh"

#include <algorithm>
#include <limits>

#include "signal/signal_probe.hh"
#include "util/logging.hh"

namespace gest {
namespace power {

std::vector<double>
PowerTrace::currentAmps() const
{
    std::vector<double> amps;
    amps.reserve(watts.size());
    for (double w : watts)
        amps.push_back(w / vdd);
    return amps;
}

PowerModel::PowerModel(EnergyModel em, double freq_ghz)
    : _em(std::move(em)), _freqGHz(freq_ghz)
{
    if (freq_ghz <= 0.0)
        fatal("power model needs a positive frequency, got ", freq_ghz);
}

double
PowerModel::cycleEnergyNj(const arch::CycleStats& stats) const
{
    double nj = _em.clockPerCycleNj;
    for (int cls = 0; cls < isa::numInstrClasses; ++cls)
        nj += _em.epiClassNj[static_cast<std::size_t>(cls)] *
              stats.issued[static_cast<std::size_t>(cls)];
    nj += _em.togglePerBitNj * stats.toggleBits;
    nj += _em.fetchPerInstrNj * stats.fetched;
    nj += _em.windowPerEntryCycleNj * stats.windowOccupancy;
    nj += _em.cacheMissNj * stats.cacheMisses;
    nj += _em.l2MissNj * stats.l2Misses;
    nj += _em.mispredictNj * stats.mispredicts;
    return nj;
}

PowerTrace
PowerModel::trace(const arch::SimResult& sim, double vdd,
                  double temp_c, signal::SignalProbe* probe) const
{
    PowerTrace out;
    traceInto(sim, vdd, temp_c, probe, out);
    return out;
}

void
PowerModel::traceInto(const arch::SimResult& sim, double vdd,
                      double temp_c, signal::SignalProbe* probe,
                      PowerTrace& out) const
{
    out.watts.clear();
    out.freqGHz = _freqGHz;
    out.vdd = vdd;
    out.watts.reserve(sim.trace.size());

    const double dyn_scale = _em.dynamicScale(vdd);
    const double leak = _em.leakageWatts(temp_c, vdd);

    double sum = 0.0;
    double peak = 0.0;
    double low = std::numeric_limits<double>::max();
    for (const arch::CycleStats& stats : sim.trace) {
        // nJ per cycle * cycles per ns (GHz) = W.
        const double w =
            cycleEnergyNj(stats) * dyn_scale * _freqGHz + leak;
        out.watts.push_back(w);
        sum += w;
        peak = std::max(peak, w);
        low = std::min(low, w);
    }
    if (out.watts.empty()) {
        out.avgWatts = leak;
        out.peakWatts = leak;
        out.minWatts = leak;
    } else {
        out.avgWatts = sum / static_cast<double>(out.watts.size());
        out.peakWatts = peak;
        out.minWatts = low;
    }
    if (probe && !out.watts.empty()) {
        const double rate_hz = _freqGHz * 1e9;
        probe->recordWaveform("core_power_w", "W", rate_hz, out.watts);
        probe->recordWaveform("core_current_a", "A", rate_hz,
                              out.currentAmps());
    }
}

double
PowerModel::averageWatts(const arch::SimResult& sim, double vdd,
                         double temp_c) const
{
    const double dyn_scale = _em.dynamicScale(vdd);
    const double leak = _em.leakageWatts(temp_c, vdd);
    if (sim.cycles == 0)
        return leak;

    // Aggregate counters avoid touching the per-cycle trace.
    double nj = _em.clockPerCycleNj * static_cast<double>(sim.cycles);
    for (int cls = 0; cls < isa::numInstrClasses; ++cls)
        nj += _em.epiClassNj[static_cast<std::size_t>(cls)] *
              static_cast<double>(
                  sim.classCounts[static_cast<std::size_t>(cls)]);
    nj += _em.togglePerBitNj * static_cast<double>(sim.totalToggleBits);
    nj += _em.fetchPerInstrNj * static_cast<double>(sim.instructions);
    nj += _em.windowPerEntryCycleNj * sim.avgWindowOccupancy *
          static_cast<double>(sim.cycles);
    nj += _em.cacheMissNj * static_cast<double>(sim.cacheMisses);
    nj += _em.l2MissNj * static_cast<double>(sim.l2Misses);
    nj += _em.mispredictNj * static_cast<double>(sim.mispredicts);

    const double avg_nj_per_cycle =
        nj / static_cast<double>(sim.cycles);
    return avg_nj_per_cycle * dyn_scale * _freqGHz + leak;
}

} // namespace power
} // namespace gest
