/**
 * @file
 * Activity-based core energy model.
 *
 * This is the substitute for the paper's external power instruments (ARM
 * energy probe, wall-plug meter). Dynamic energy is charged per
 * micro-architectural event — issued micro-ops by class, fetched
 * instructions, scheduler-window occupancy (the issue-queue/dependency-
 * tracking power the paper uses to explain why the X-Gene2 power virus
 * keeps a few long-latency instructions in flight), result-bit toggles
 * (why checkerboard register initialization matters), cache misses and
 * branch mispredictions — plus a per-cycle clock-tree component. Leakage
 * is a function of temperature and supply voltage.
 */

#ifndef GEST_POWER_ENERGY_MODEL_HH
#define GEST_POWER_ENERGY_MODEL_HH

#include <array>
#include <string>

#include "isa/instr_class.hh"

namespace gest {
namespace power {

/** Per-event energies in nanojoules plus a leakage characterization. */
struct EnergyModel
{
    std::string name;

    /** Energy per issued micro-op, by instruction class (nJ). */
    std::array<double, isa::numInstrClasses> epiClassNj{};

    /** Energy per toggled result bit (nJ). */
    double togglePerBitNj = 0.0;

    /** Energy per fetched/decoded instruction (nJ). */
    double fetchPerInstrNj = 0.0;

    /** Energy per scheduler-window entry per cycle (nJ). */
    double windowPerEntryCycleNj = 0.0;

    /** Energy per L1 miss (L2 access + fill) (nJ). */
    double cacheMissNj = 0.0;

    /** Energy per L2 miss (DRAM access) (nJ). */
    double l2MissNj = 0.0;

    /** Energy per branch misprediction (squash + refetch) (nJ). */
    double mispredictNj = 0.0;

    /** Clock tree + always-on dynamic energy per cycle (nJ). */
    double clockPerCycleNj = 0.0;

    /** Nominal supply voltage the EPI values were characterized at. */
    double vddNominal = 1.0;

    /** Leakage power at the reference temperature and voltage (W). */
    double leakageRefWatts = 0.0;

    /** Reference temperature for leakage (degrees C). */
    double leakageRefTempC = 55.0;

    /** Fractional leakage increase per degree C above reference. */
    double leakageTempCoeff = 0.012;

    /** EPI value for one class. */
    double
    epi(isa::InstrClass cls) const
    {
        return epiClassNj[static_cast<std::size_t>(cls)];
    }

    /** Set the EPI value for one class. */
    void
    setEpi(isa::InstrClass cls, double nj)
    {
        epiClassNj[static_cast<std::size_t>(cls)] = nj;
    }

    /**
     * Leakage power at a given die temperature and supply.
     * Linearized exponential in T; quadratic in V.
     */
    double leakageWatts(double temp_c, double vdd) const;

    /** Dynamic-energy voltage scaling factor (V/Vnom)^2. */
    double dynamicScale(double vdd) const;
};

/** Energy model matching the Cortex-A15-like core. */
EnergyModel cortexA15Energy();

/** Energy model matching the Cortex-A7-like core. */
EnergyModel cortexA7Energy();

/** Energy model matching the X-Gene2-like core. */
EnergyModel xgene2Energy();

/** Energy model matching the Athlon-II-like core. */
EnergyModel athlonX4Energy();

} // namespace power
} // namespace gest

#endif // GEST_POWER_ENERGY_MODEL_HH
