#include "core/individual.hh"

#include <set>
#include <sstream>

namespace gest {
namespace core {

std::vector<std::string>
renderLines(const isa::InstructionLibrary& lib, const Individual& ind)
{
    std::vector<std::string> lines;
    lines.reserve(ind.code.size());
    for (const isa::InstructionInstance& inst : ind.code)
        lines.push_back(lib.render(inst));
    return lines;
}

std::size_t
uniqueInstructionCount(const Individual& ind)
{
    std::set<std::uint32_t> defs;
    for (const isa::InstructionInstance& inst : ind.code)
        defs.insert(inst.defIndex);
    return defs.size();
}

std::array<int, isa::numInstrClasses>
classBreakdown(const isa::InstructionLibrary& lib, const Individual& ind)
{
    std::array<int, isa::numInstrClasses> counts{};
    for (const isa::InstructionInstance& inst : ind.code) {
        const isa::InstrClass cls = lib.instruction(inst.defIndex).cls;
        ++counts[static_cast<std::size_t>(cls)];
    }
    return counts;
}

std::string
breakdownToString(const std::array<int, isa::numInstrClasses>& breakdown)
{
    std::ostringstream os;
    for (int cls = 0; cls < isa::numInstrClasses; ++cls) {
        if (cls > 0)
            os << " ";
        os << isa::toString(static_cast<isa::InstrClass>(cls)) << "="
           << breakdown[static_cast<std::size_t>(cls)];
    }
    return os.str();
}

} // namespace core
} // namespace gest
