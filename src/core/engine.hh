/**
 * @file
 * The GA engine: coordinates seeding, measurement, fitness evaluation
 * and breeding (§III.A, Figure 2).
 */

#ifndef GEST_CORE_ENGINE_HH
#define GEST_CORE_ENGINE_HH

#include <functional>
#include <optional>
#include <vector>

#include "core/ga_params.hh"
#include "core/operators.hh"
#include "core/population.hh"
#include "fitness/fitness.hh"
#include "measure/measurement.hh"
#include "util/random.hh"

namespace gest {
namespace core {

/** Per-generation summary appended to the engine's history. */
struct GenerationRecord
{
    int generation = 0;
    double bestFitness = 0.0;
    double averageFitness = 0.0;
    std::uint64_t bestId = 0;
    std::size_t bestUniqueInstructions = 0;
    std::array<int, isa::numInstrClasses> bestBreakdown{};

    /** Population genotype diversity (Population::genotypeDiversity). */
    double diversity = 0.0;
};

/**
 * Drives one GA search. The engine owns the population and the RNG; the
 * caller owns the library, measurement and fitness objects, which must
 * outlive the engine.
 */
class Engine
{
  public:
    /** Callback invoked after each generation is evaluated. */
    using GenerationCallback =
        std::function<void(const Population&, const GenerationRecord&)>;

    Engine(GaParams params, const isa::InstructionLibrary& lib,
           measure::Measurement& measurement, fitness::Fitness& fitness);

    /**
     * Install a seed population used as generation 0 instead of random
     * individuals (§III.D: saved populations can seed a new search).
     * Must be called before initialize()/run().
     */
    void setSeedPopulation(Population seed);

    /** Install a per-generation observer (progress logs, output files). */
    void setGenerationCallback(GenerationCallback callback);

    /** Create and evaluate generation 0. */
    void initialize();

    /**
     * Breed and evaluate the next generation.
     * @return false once params.generations have been evaluated.
     */
    bool step();

    /** initialize() + step() until done; @return the final population. */
    const Population& run();

    /** The current population. */
    const Population& population() const { return _population; }

    /** The fittest individual seen across all generations. */
    const Individual& bestEver() const;

    /** Per-generation records. */
    const std::vector<GenerationRecord>& history() const
    {
        return _history;
    }

    /** Total measure() invocations so far. */
    std::uint64_t evaluations() const { return _evaluations; }

    /** The engine's parameters. */
    const GaParams& params() const { return _params; }

    /** Mutable RNG access (tests). */
    Rng& rng() { return _rng; }

  private:
    /** Generate one random individual of the configured size. */
    Individual randomIndividual();

    /** @return true once the stagnation early-stop triggers. */
    bool stagnated() const;

    /** Measure and score one individual if not already evaluated. */
    void evaluate(Individual& ind);

    /** Evaluate every individual and append the generation record. */
    void evaluatePopulation();

    /** Build the next generation from the current one. */
    Population breed();

    GaParams _params;
    const isa::InstructionLibrary& _lib;
    measure::Measurement& _measurement;
    fitness::Fitness& _fitness;
    Rng _rng;

    Population _population;
    std::optional<Population> _seed;
    std::optional<Individual> _bestEver;
    std::vector<GenerationRecord> _history;
    GenerationCallback _callback;
    std::uint64_t _nextId = 1;
    std::uint64_t _evaluations = 0;
    bool _initialized = false;
};

} // namespace core
} // namespace gest

#endif // GEST_CORE_ENGINE_HH
