/**
 * @file
 * The GA engine: coordinates seeding, measurement, fitness evaluation
 * and breeding (§III.A, Figure 2).
 */

#ifndef GEST_CORE_ENGINE_HH
#define GEST_CORE_ENGINE_HH

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/fitness_cache.hh"
#include "core/ga_params.hh"
#include "core/operators.hh"
#include "core/population.hh"
#include "fitness/fitness.hh"
#include "measure/measurement.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"

namespace gest {

namespace output {
class TraceWriter;
} // namespace output

namespace analysis {
class Recorder;
} // namespace analysis

namespace core {

/** Per-generation summary appended to the engine's history. */
struct GenerationRecord
{
    int generation = 0;
    double bestFitness = 0.0;
    double averageFitness = 0.0;
    std::uint64_t bestId = 0;
    std::size_t bestUniqueInstructions = 0;
    std::array<int, isa::numInstrClasses> bestBreakdown{};

    /** Population genotype diversity (Population::genotypeDiversity). */
    double diversity = 0.0;

    /**
     * Evaluations satisfied without running the measurement this
     * generation: fitness-cache hits plus in-generation duplicate
     * genomes folded onto one measurement.
     */
    std::uint64_t cacheHits = 0;

    /** Measurements actually performed this generation. */
    std::uint64_t cacheMisses = 0;

    /**
     * Per-phase wall-clock milliseconds for this generation. All zero
     * unless stats recording (stats::setEnabled) or a trace writer is
     * active when the generation runs — timing the phases costs clock
     * reads the untimed hot path must not pay.
     */
    double selectionMs = 0.0;   ///< parent selection inside breed()
    double crossoverMs = 0.0;   ///< crossover inside breed()
    double mutationMs = 0.0;    ///< mutation inside breed()
    double evaluationMs = 0.0;  ///< cache resolution + measurements
};

/**
 * Drives one GA search. The engine owns the population and the RNG; the
 * caller owns the library, measurement and fitness objects, which must
 * outlive the engine.
 */
class Engine
{
  public:
    /** Callback invoked after each generation is evaluated. */
    using GenerationCallback =
        std::function<void(const Population&, const GenerationRecord&)>;

    Engine(GaParams params, const isa::InstructionLibrary& lib,
           measure::Measurement& measurement, fitness::Fitness& fitness);

    /**
     * Install a seed population used as generation 0 instead of random
     * individuals (§III.D: saved populations can seed a new search).
     * Must be called before initialize()/run().
     */
    void setSeedPopulation(Population seed);

    /** Install a per-generation observer (progress logs, output files). */
    void setGenerationCallback(GenerationCallback callback);

    /**
     * Install an additional per-generation observer; unlike
     * setGenerationCallback (of which there is exactly one, owned by
     * the run driver), any number of observers can stack — the flight
     * recorder and the live telemetry service attach here. Observers
     * run on the coordinator thread after the analytics recorder and
     * the primary callback, in installation order; they must not
     * mutate the GA (they receive const views and the engine never
     * hands them the RNG).
     */
    void addGenerationObserver(GenerationCallback observer);

    /**
     * Attach a Chrome-trace writer (may be null to detach). The engine
     * emits one complete event per generation phase on tid 0 and one
     * per measurement on the worker's tid (worker id + 1); attaching a
     * writer also turns on per-phase timing even when stats are
     * globally disabled. The writer must outlive the engine.
     */
    void setTraceWriter(output::TraceWriter* trace);

    /**
     * Attach an evolution-analytics recorder (may be null to detach;
     * must outlive the engine). The engine then reports every birth —
     * seeds, crossover/mutation children with their mutated gene
     * indices, elite copies — and each evaluated generation to it, so
     * the recorder can maintain lineage.csv, analytics.csv and the
     * status.json heartbeat. Recording never touches the GA RNG:
     * results are bit-identical with the recorder attached or not.
     */
    void setAnalytics(analysis::Recorder* recorder);

    /** Create and evaluate generation 0. */
    void initialize();

    /**
     * Breed and evaluate the next generation.
     * @return false once params.generations have been evaluated.
     */
    bool step();

    /** initialize() + step() until done; @return the final population. */
    const Population& run();

    /** The current population. */
    const Population& population() const { return _population; }

    /** The fittest individual seen across all generations. */
    const Individual& bestEver() const;

    /** Per-generation records. */
    const std::vector<GenerationRecord>& history() const
    {
        return _history;
    }

    /** Total measure() invocations so far. */
    std::uint64_t evaluations() const { return _evaluations; }

    /** Lifetime evaluations satisfied by the fitness cache. */
    std::uint64_t cacheHits() const { return _cacheHits; }

    /** Lifetime evaluations that had to run the measurement. */
    std::uint64_t cacheMisses() const { return _cacheMisses; }

    /** The engine's parameters. */
    const GaParams& params() const { return _params; }

    /** Mutable RNG access (tests). */
    Rng& rng() { return _rng; }

  private:
    /** Generate one random individual of the configured size. */
    Individual randomIndividual();

    /** @return true once the stagnation early-stop triggers. */
    bool stagnated() const;

    /** Measure and score one individual with @p measurement. */
    void measureOne(Individual& ind,
                    measure::Measurement& measurement) const;

    /**
     * @return true when the engine should read clocks: stats recording
     * is on or a trace writer is attached.
     */
    bool timed() const;

    /** measureOne plus timing/trace bookkeeping for worker @p worker. */
    void measureOneTimed(Individual& ind,
                         measure::Measurement& measurement, int worker);

    /**
     * Measure the individuals at @p indices, serially or fanned out
     * across the worker pool. Results are written back by index, so
     * the outcome is independent of scheduling order for measurements
     * that are pure functions of the code.
     */
    void measureBatch(const std::vector<std::size_t>& indices);

    /** Lazily start the worker pool and per-worker measurement clones. */
    void ensureWorkers();

    /** Evaluate every individual and append the generation record. */
    void evaluatePopulation();

    /** Build the next generation from the current one. */
    Population breed();

    GaParams _params;
    const isa::InstructionLibrary& _lib;
    measure::Measurement& _measurement;
    fitness::Fitness& _fitness;
    Rng _rng;

    Population _population;
    std::optional<Population> _seed;
    std::optional<Individual> _bestEver;
    std::vector<GenerationRecord> _history;
    GenerationCallback _callback;
    std::vector<GenerationCallback> _observers;
    std::uint64_t _nextId = 1;
    std::uint64_t _evaluations = 0;
    bool _initialized = false;

    /** Worker pool, started on the first parallel evaluation. */
    std::unique_ptr<util::ThreadPool> _pool;

    /** One private measurement clone per worker. */
    std::vector<std::unique_ptr<measure::Measurement>> _workerMeasurements;

    /** Genome-keyed fitness cache (null when disabled). */
    std::unique_ptr<FitnessCache> _cache;
    std::uint64_t _cacheHits = 0;
    std::uint64_t _cacheMisses = 0;

    /** Chrome-trace sink (null when tracing is off). */
    output::TraceWriter* _trace = nullptr;

    /** Evolution-analytics sink (null when analytics are off). */
    analysis::Recorder* _analytics = nullptr;

    /** Phase timings accumulated by breed(), consumed by the record. */
    struct BreedTiming
    {
        double selectionUs = 0.0;
        double crossoverUs = 0.0;
        double mutationUs = 0.0;
    };
    BreedTiming _breedTiming;

    /**
     * Per-worker busy microseconds within the current generation. Each
     * slot is written only by the worker owning that id (disjoint
     * writes, no atomics needed); the coordinator reads after the
     * parallelFor barrier.
     */
    std::vector<double> _workerBusyUs;
};

} // namespace core
} // namespace gest

#endif // GEST_CORE_ENGINE_HH
