/**
 * @file
 * A generation of individuals, with serialization for checkpoints and
 * seed populations (§III.D: each population is saved and can seed a new
 * GA search).
 */

#ifndef GEST_CORE_POPULATION_HH
#define GEST_CORE_POPULATION_HH

#include <string>
#include <vector>

#include "core/individual.hh"

namespace gest {
namespace core {

/** One generation. */
struct Population
{
    int generation = 0;
    std::vector<Individual> individuals;

    /** Index of the fittest evaluated individual; -1 if none. */
    int bestIndex() const;

    /** The fittest evaluated individual; panic() if none. */
    const Individual& best() const;

    /** Mean fitness over evaluated individuals (0 if none). */
    double averageFitness() const;

    /**
     * Genotype diversity in [0, 1]: per gene position, the number of
     * distinct instruction definitions used across the population
     * relative to the population size, averaged over positions. 1/N
     * for a population of clones, approaching 1 for a fully random
     * population over a rich alphabet. Standard GA convergence
     * diagnostic; the search has converged once this collapses.
     */
    double genotypeDiversity() const;
};

/**
 * Serialize a population to the framework's portable text format.
 * Instructions are stored by name plus operand-choice indices so files
 * survive library reordering as long as names are stable.
 */
std::string serializePopulation(const isa::InstructionLibrary& lib,
                                const Population& pop);

/**
 * Parse a population file produced by serializePopulation(). fatal() on
 * malformed input or instruction names missing from @p lib.
 */
Population deserializePopulation(const isa::InstructionLibrary& lib,
                                 const std::string& text);

/** Write a population file. */
void savePopulation(const isa::InstructionLibrary& lib,
                    const Population& pop, const std::string& path);

/** Read a population file. */
Population loadPopulation(const isa::InstructionLibrary& lib,
                          const std::string& path);

} // namespace core
} // namespace gest

#endif // GEST_CORE_POPULATION_HH
