/**
 * @file
 * Genetic-algorithm parameters (the paper's Table I).
 */

#ifndef GEST_CORE_GA_PARAMS_HH
#define GEST_CORE_GA_PARAMS_HH

#include <cstdint>
#include <string>

namespace gest {
namespace core {

/** Crossover operators the engine supports (§III.A). */
enum class CrossoverOperator
{
    OnePoint, ///< preserves parental instruction order; the default
    Uniform,  ///< per-gene coin flip between parents
};

/** @return "one_point" / "uniform". */
const char* toString(CrossoverOperator op);

/** Parse a crossover-operator name; fatal() if unknown. */
CrossoverOperator crossoverFromString(const std::string& name);

/** Parent-selection methods. */
enum class SelectionMethod
{
    Tournament, ///< the paper's default, tournament size 5
    Roulette,   ///< fitness-proportional
};

/** @return "tournament" / "roulette". */
const char* toString(SelectionMethod method);

/** Parse a selection-method name; fatal() if unknown. */
SelectionMethod selectionFromString(const std::string& name);

/**
 * All engine knobs, defaulted to the paper's Table I values.
 */
struct GaParams
{
    /** Individuals per generation. */
    int populationSize = 50;

    /** Loop-body length in instructions (15-50 in the paper). */
    int individualSize = 50;

    /**
     * Per-instruction mutation probability. The paper's guidance: pick
     * it so one or at most two instructions mutate per individual (2%
     * for 50-instruction loops, 8% for 15).
     */
    double mutationRate = 0.02;

    /**
     * Probability that a mutation rewrites only an operand instead of
     * the whole instruction (Figure 3 shows both operator flavors).
     */
    double operandMutationProb = 0.5;

    CrossoverOperator crossover = CrossoverOperator::OnePoint;

    SelectionMethod selection = SelectionMethod::Tournament;

    /** Tournament size (Table I: 5). */
    int tournamentSize = 5;

    /** Promote the best individual unchanged (Table I: TRUE). */
    bool elitism = true;

    /** Generations to run (the paper: 70-100 typically suffice). */
    int generations = 100;

    /**
     * Early stop: end the run once the best fitness has not improved
     * for this many consecutive generations (0 disables). The paper
     * observes searches saturating within 70-100 generations; this
     * knob stops paying 5-second hardware measurements past that
     * point.
     */
    int stagnationLimit = 0;

    /** RNG seed; equal seeds give bit-identical runs. */
    std::uint64_t seed = 1;

    /**
     * Worker threads for population evaluation (1 = serial). The
     * original tool dispatches individuals to multiple boards because
     * measurement dominates wall-clock time; here workers measure
     * against private Measurement clones. For measurements that are
     * pure functions of the code, results are bit-identical to a
     * serial run regardless of the thread count (evaluation never
     * touches the GA RNG and results are written back by index).
     */
    int threads = 1;

    /**
     * Capacity of the genome-keyed fitness cache (0 disables).
     * Duplicate genomes — elitism survivors, identical crossover
     * children, converged clones — skip the simulator and reuse the
     * first measurement. Transparent for deterministic measurements;
     * see docs/parallelism.md for the noisy-measurement semantics.
     */
    int fitnessCacheSize = 0;

    /**
     * Pick a mutation rate targeting ~one mutated instruction per
     * individual of the given size (the paper's rule of thumb).
     */
    static double mutationRateForSize(int individual_size);

    /**
     * The paper's dI/dt loop-length rule: instructions =
     * IPC * f_clk / f_resonance with IPC about half the peak.
     */
    static int didtLoopLength(double ipc, double freq_ghz,
                              double resonance_hz);

    /** Sanity-check all fields; fatal() on out-of-range values. */
    void validate() const;
};

} // namespace core
} // namespace gest

#endif // GEST_CORE_GA_PARAMS_HH
