/**
 * @file
 * Genetic operators: selection, crossover, mutation (§III.A, Figure 3).
 */

#ifndef GEST_CORE_OPERATORS_HH
#define GEST_CORE_OPERATORS_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/ga_params.hh"
#include "core/individual.hh"
#include "core/population.hh"
#include "util/random.hh"

namespace gest {
namespace core {

/**
 * Tournament selection: draw @p tournament_size individuals uniformly
 * (with replacement) and return the index of the fittest.
 */
std::size_t tournamentSelect(const Population& pop, int tournament_size,
                             Rng& rng);

/**
 * Roulette-wheel (fitness-proportional) selection. Negative fitness is
 * shifted so every individual keeps a non-zero probability.
 */
std::size_t rouletteSelect(const Population& pop, Rng& rng);

/** Dispatch on the configured selection method. */
std::size_t selectParent(const Population& pop, const GaParams& params,
                         Rng& rng);

/**
 * One-point crossover (Figure 3): children swap tails at a random cut.
 * Preserves parental instruction order, which the paper found to
 * accelerate convergence for power and dI/dt searches.
 */
std::pair<Individual, Individual>
onePointCrossover(const Individual& p1, const Individual& p2, Rng& rng);

/** Uniform crossover: each gene is swapped with probability one half. */
std::pair<Individual, Individual>
uniformCrossover(const Individual& p1, const Individual& p2, Rng& rng);

/** Dispatch on the configured crossover operator. */
std::pair<Individual, Individual>
crossover(const Individual& p1, const Individual& p2,
          const GaParams& params, Rng& rng);

/**
 * Mutate in place: each instruction independently mutates with
 * probability params.mutationRate. A mutation rewrites one operand with
 * probability params.operandMutationProb, otherwise it replaces the
 * whole instruction with a fresh random one (Figure 3 shows both).
 *
 * When @p mutated_out is non-null the indices of the rewritten genes
 * are appended to it (the lineage ledger records them); the RNG is
 * consumed identically either way, so recording never perturbs the
 * search.
 *
 * @return the number of mutated instructions.
 */
int mutate(Individual& ind, const isa::InstructionLibrary& lib,
           const GaParams& params, Rng& rng,
           std::vector<std::uint32_t>* mutated_out = nullptr);

} // namespace core
} // namespace gest

#endif // GEST_CORE_OPERATORS_HH
