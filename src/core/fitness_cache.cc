#include "core/fitness_cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gest {
namespace core {

namespace {

constexpr std::uint64_t fnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t fnvPrime = 1099511628211ULL;

inline std::uint64_t
mix(std::uint64_t hash, std::uint64_t value)
{
    // Feed the value byte by byte, FNV-1a style.
    for (int shift = 0; shift < 64; shift += 8) {
        hash ^= (value >> shift) & 0xffu;
        hash *= fnvPrime;
    }
    return hash;
}

} // namespace

std::uint64_t
genomeHash(const std::vector<isa::InstructionInstance>& code)
{
    std::uint64_t hash = fnvOffset;
    hash = mix(hash, code.size());
    for (const isa::InstructionInstance& inst : code) {
        hash = mix(hash, inst.defIndex);
        // Operand counts are fixed per definition, but hashing the size
        // keeps the function collision-free across library variants.
        hash = mix(hash, inst.operandChoice.size());
        for (std::uint32_t choice : inst.operandChoice)
            hash = mix(hash, choice);
    }
    return hash;
}

FitnessCache::FitnessCache(std::size_t capacity) : _capacity(capacity)
{
    if (capacity == 0)
        fatal("fitness cache capacity must be positive");
}

FitnessCache::NodeList::iterator
FitnessCache::find(std::uint64_t hash,
                   const std::vector<isa::InstructionInstance>& code)
{
    const auto bucket = _index.find(hash);
    if (bucket == _index.end())
        return _lru.end();
    for (NodeList::iterator it : bucket->second) {
        if (it->code == code)
            return it;
    }
    return _lru.end();
}

const FitnessCache::Entry*
FitnessCache::lookup(const std::vector<isa::InstructionInstance>& code)
{
    const std::uint64_t hash = genomeHash(code);
    const NodeList::iterator it = find(hash, code);
    if (it == _lru.end()) {
        ++_misses;
        return nullptr;
    }
    ++_hits;
    _lru.splice(_lru.begin(), _lru, it);
    return &_lru.front().entry;
}

void
FitnessCache::insert(const std::vector<isa::InstructionInstance>& code,
                     Entry entry)
{
    const std::uint64_t hash = genomeHash(code);
    const NodeList::iterator it = find(hash, code);
    if (it != _lru.end()) {
        it->entry = std::move(entry);
        _lru.splice(_lru.begin(), _lru, it);
        return;
    }
    _lru.push_front(Node{code, hash, std::move(entry)});
    _index[hash].push_back(_lru.begin());
    if (_lru.size() > _capacity)
        evict();
}

void
FitnessCache::evict()
{
    const NodeList::iterator victim = std::prev(_lru.end());
    const auto bucket = _index.find(victim->hash);
    if (bucket == _index.end())
        panic("fitness cache index lost a bucket");
    auto& entries = bucket->second;
    entries.erase(std::remove(entries.begin(), entries.end(), victim),
                  entries.end());
    if (entries.empty())
        _index.erase(bucket);
    _lru.pop_back();
}

} // namespace core
} // namespace gest
