#include "core/engine.hh"

#include <algorithm>
#include <unordered_map>

#include "analysis/recorder.hh"
#include "output/trace_writer.hh"
#include "stats/stats.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace core {

namespace {

/**
 * Engine-wide stat handles, resolved once: hot paths hold references
 * instead of re-hashing names in the registry per sample.
 */
struct EngineStats
{
    stats::Counter& generations;
    stats::Counter& evaluations;
    stats::Counter& cacheHits;
    stats::Counter& cacheMisses;
    stats::Histogram& evalUs;
    stats::Histogram& cacheHitUs;
    stats::Histogram& cacheMissUs;
    stats::Histogram& selectionUs;
    stats::Histogram& crossoverUs;
    stats::Histogram& mutationUs;
    stats::Histogram& generationEvalUs;
};

EngineStats&
engineStats()
{
    static EngineStats s{
        stats::StatsRegistry::instance().counter(
            "engine.generations", "generations evaluated"),
        stats::StatsRegistry::instance().counter(
            "engine.evaluations", "measurements performed"),
        stats::StatsRegistry::instance().counter(
            "engine.cache.hits", "evaluations satisfied by the cache"),
        stats::StatsRegistry::instance().counter(
            "engine.cache.misses", "evaluations that ran the measurement"),
        stats::StatsRegistry::instance().histogram(
            "engine.eval_us", "one measurement + fitness scoring (us)",
            0.0, 20000.0, 40),
        stats::StatsRegistry::instance().histogram(
            "engine.cache.hit_us", "fitness-cache hit latency (us)", 0.0,
            50.0, 25),
        stats::StatsRegistry::instance().histogram(
            "engine.cache.miss_us", "fitness-cache miss latency (us)",
            0.0, 50.0, 25),
        stats::StatsRegistry::instance().histogram(
            "engine.selection_us", "parent selection per generation (us)",
            0.0, 20000.0, 40),
        stats::StatsRegistry::instance().histogram(
            "engine.crossover_us", "crossover per generation (us)", 0.0,
            20000.0, 40),
        stats::StatsRegistry::instance().histogram(
            "engine.mutation_us", "mutation per generation (us)", 0.0,
            20000.0, 40),
        stats::StatsRegistry::instance().histogram(
            "engine.generation_eval_us",
            "whole-population evaluation per generation (us)", 0.0,
            2000000.0, 40),
    };
    return s;
}

} // namespace

Engine::Engine(GaParams params, const isa::InstructionLibrary& lib,
               measure::Measurement& measurement,
               fitness::Fitness& fitness)
    : _params(params), _lib(lib), _measurement(measurement),
      _fitness(fitness), _rng(params.seed)
{
    _params.validate();
    if (lib.numInstructions() == 0)
        fatal("the GA needs a non-empty instruction library");
    if (_params.fitnessCacheSize > 0)
        _cache = std::make_unique<FitnessCache>(
            static_cast<std::size_t>(_params.fitnessCacheSize));
}

void
Engine::setSeedPopulation(Population seed)
{
    if (_initialized)
        fatal("seed population must be installed before initialize()");
    if (seed.individuals.empty())
        fatal("seed population is empty");
    for (const Individual& ind : seed.individuals) {
        if (static_cast<int>(ind.code.size()) != _params.individualSize)
            fatal("seed individual ", ind.id, " has ", ind.code.size(),
                  " instructions but the configuration asks for ",
                  _params.individualSize);
        for (const isa::InstructionInstance& inst : ind.code) {
            if (!_lib.valid(inst))
                fatal("seed individual ", ind.id,
                      " contains an instruction encoding that is invalid "
                      "for the current library");
        }
    }
    _seed = std::move(seed);
}

void
Engine::setGenerationCallback(GenerationCallback callback)
{
    _callback = std::move(callback);
}

void
Engine::addGenerationObserver(GenerationCallback observer)
{
    if (observer)
        _observers.push_back(std::move(observer));
}

void
Engine::setTraceWriter(output::TraceWriter* trace)
{
    _trace = trace;
    if (_trace)
        _trace->setThreadName(0, util::ThreadPool::workerName(-1));
}

void
Engine::setAnalytics(analysis::Recorder* recorder)
{
    _analytics = recorder;
}

bool
Engine::timed() const
{
    return stats::enabled() || _trace != nullptr;
}

Individual
Engine::randomIndividual()
{
    Individual ind;
    ind.id = _nextId++;
    ind.code.reserve(static_cast<std::size_t>(_params.individualSize));
    for (int i = 0; i < _params.individualSize; ++i)
        ind.code.push_back(_lib.randomInstance(_rng));
    return ind;
}

void
Engine::measureOne(Individual& ind,
                   measure::Measurement& measurement) const
{
    // Never touches the GA RNG or any engine state, so workers can run
    // it concurrently against their private measurement clones.
    ind.measurements = measurement.measure(ind.code).values;
    ind.fitness = _fitness.getFitness(ind, _lib);
    ind.evaluated = true;
}

void
Engine::measureOneTimed(Individual& ind,
                        measure::Measurement& measurement, int worker)
{
    const double start = stats::nowUs();
    measureOne(ind, measurement);
    const double elapsed = stats::nowUs() - start;
    engineStats().evalUs.sample(elapsed);
    // Disjoint per-worker slots: each is touched only by the thread
    // owning that worker id (slot 0 doubles as the serial path's).
    _workerBusyUs[static_cast<std::size_t>(std::max(worker, 0))] +=
        elapsed;
    if (_trace) {
        // Serial measurements run on the coordinator (tid 0); pool
        // workers occupy tids 1..N.
        const int tid = util::ThreadPool::currentWorkerId() + 1;
        _trace->completeEvent("evaluate", "eval", tid, start, elapsed,
                              {{"individual",
                                static_cast<double>(ind.id)}});
    }
}

void
Engine::ensureWorkers()
{
    if (_pool)
        return;
    const int workers = _params.threads;
    _workerMeasurements.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        std::unique_ptr<measure::Measurement> clone =
            _measurement.clone();
        if (!clone)
            fatal("measurement '", _measurement.name(),
                  "' does not implement clone() and cannot be shared "
                  "across evaluation workers; set threads=1");
        _workerMeasurements.push_back(std::move(clone));
    }
    _pool = std::make_unique<util::ThreadPool>(workers);
    debug("evaluation pool started with ", workers, " workers");
    if (_trace) {
        for (int w = 0; w < workers; ++w)
            _trace->setThreadName(w + 1, util::ThreadPool::workerName(w));
    }
}

void
Engine::measureBatch(const std::vector<std::size_t>& indices)
{
    if (indices.empty())
        return;
    const bool record = timed();
    if (record)
        _workerBusyUs.assign(
            static_cast<std::size_t>(std::max(_params.threads, 1)), 0.0);
    std::vector<Individual>& inds = _population.individuals;
    if (_params.threads <= 1 || indices.size() == 1) {
        for (std::size_t index : indices) {
            if (record)
                measureOneTimed(inds[index], _measurement, 0);
            else
                measureOne(inds[index], _measurement);
        }
    } else {
        ensureWorkers();
        _pool->parallelFor(
            indices.size(), [&](std::size_t k, int worker) {
                if (record)
                    measureOneTimed(inds[indices[k]],
                                    *_workerMeasurements[
                                        static_cast<std::size_t>(worker)],
                                    worker);
                else
                    measureOne(inds[indices[k]],
                               *_workerMeasurements[
                                   static_cast<std::size_t>(worker)]);
            });
    }
    _evaluations += indices.size();
    engineStats().evaluations.inc(indices.size());
    if (record) {
        // Publish per-worker busy time so pool utilization/imbalance is
        // visible in stats.txt and metrics.json.
        for (std::size_t w = 0; w < _workerBusyUs.size(); ++w) {
            if (_workerBusyUs[w] > 0.0)
                stats::StatsRegistry::instance()
                    .counter("engine.worker." + std::to_string(w) +
                                 ".busy_us",
                             "evaluation busy time of this worker (us)")
                    .inc(static_cast<std::uint64_t>(_workerBusyUs[w]));
        }
    }
}

void
Engine::evaluatePopulation()
{
    std::vector<Individual>& inds = _population.individuals;
    const bool record = timed();
    const double evalStart = record ? stats::nowUs() : 0.0;

    // Resolve cache hits and fold in-generation duplicate genomes onto
    // one representative each, so nothing redundant reaches the
    // simulator. Duplicate groups only form when the cache is enabled:
    // with it off, the engine measures exactly what the serial seed
    // code measured.
    std::uint64_t hits = 0;
    std::vector<std::size_t> toMeasure;
    std::vector<std::vector<std::size_t>> duplicates;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < inds.size(); ++i) {
        Individual& ind = inds[i];
        if (ind.evaluated)
            continue;
        if (!_cache) {
            toMeasure.push_back(i);
            continue;
        }
        const FitnessCache::Entry* entry;
        if (record) {
            const double lookupStart = stats::nowUs();
            entry = _cache->lookup(ind.code);
            const double lookupUs = stats::nowUs() - lookupStart;
            (entry ? engineStats().cacheHitUs
                   : engineStats().cacheMissUs)
                .sample(lookupUs);
        } else {
            entry = _cache->lookup(ind.code);
        }
        if (entry) {
            ind.measurements = entry->measurements;
            ind.fitness = entry->fitness;
            ind.evaluated = true;
            ++hits;
            continue;
        }
        std::vector<std::size_t>& slots = groups[genomeHash(ind.code)];
        bool merged = false;
        for (std::size_t slot : slots) {
            if (inds[toMeasure[slot]].code == ind.code) {
                duplicates[slot].push_back(i);
                merged = true;
                ++hits;
                break;
            }
        }
        if (merged)
            continue;
        slots.push_back(toMeasure.size());
        toMeasure.push_back(i);
        duplicates.emplace_back();
    }

    measureBatch(toMeasure);

    // Back on the coordinating thread: publish representatives to the
    // cache and copy them onto their duplicates, in index order so the
    // outcome never depends on worker scheduling.
    if (_cache) {
        for (std::size_t slot = 0; slot < toMeasure.size(); ++slot) {
            const Individual& rep = inds[toMeasure[slot]];
            _cache->insert(rep.code,
                           {rep.measurements, rep.fitness});
            for (std::size_t i : duplicates[slot]) {
                inds[i].measurements = rep.measurements;
                inds[i].fitness = rep.fitness;
                inds[i].evaluated = true;
            }
        }
    }
    _cacheHits += hits;
    _cacheMisses += toMeasure.size();
    engineStats().cacheHits.inc(hits);
    engineStats().cacheMisses.inc(toMeasure.size());
    engineStats().generations.inc();

    const Individual& best = _population.best();
    // Copy into _bestEver only on strict improvement: with elitism the
    // champion reappears every generation and the copy would be a
    // full-genome allocation per generation.
    if (!_bestEver || best.fitness > _bestEver->fitness)
        _bestEver = best;

    GenerationRecord generationRecord;
    generationRecord.generation = _population.generation;
    generationRecord.bestFitness = best.fitness;
    generationRecord.averageFitness = _population.averageFitness();
    generationRecord.bestId = best.id;
    generationRecord.bestUniqueInstructions =
        uniqueInstructionCount(best);
    generationRecord.bestBreakdown = classBreakdown(_lib, best);
    generationRecord.diversity = _population.genotypeDiversity();
    generationRecord.cacheHits = hits;
    generationRecord.cacheMisses = toMeasure.size();
    if (record) {
        const double evalUs = stats::nowUs() - evalStart;
        engineStats().generationEvalUs.sample(evalUs);
        engineStats().selectionUs.sample(_breedTiming.selectionUs);
        engineStats().crossoverUs.sample(_breedTiming.crossoverUs);
        engineStats().mutationUs.sample(_breedTiming.mutationUs);
        generationRecord.selectionMs = _breedTiming.selectionUs / 1000.0;
        generationRecord.crossoverMs = _breedTiming.crossoverUs / 1000.0;
        generationRecord.mutationMs = _breedTiming.mutationUs / 1000.0;
        generationRecord.evaluationMs = evalUs / 1000.0;
        _breedTiming = {};
        if (_trace) {
            _trace->completeEvent(
                "evaluate population", "phase", 0, evalStart, evalUs,
                {{"generation",
                  static_cast<double>(_population.generation)},
                 {"measured", static_cast<double>(toMeasure.size())},
                 {"cache_hits", static_cast<double>(hits)}});
        }
        debug("generation ", _population.generation, ": best ",
              best.fitness, ", ", toMeasure.size(), " measured, ", hits,
              " cache hits, evaluation ",
              formatFixed(generationRecord.evaluationMs, 2), " ms");
    }
    _history.push_back(generationRecord);

    if (_analytics)
        _analytics->onGenerationEvaluated(_population, generationRecord);
    if (_callback)
        _callback(_population, generationRecord);
    for (const GenerationCallback& observer : _observers)
        observer(_population, generationRecord);
}

void
Engine::initialize()
{
    if (_initialized)
        fatal("engine initialized twice");
    _initialized = true;

    _population = Population{};
    _population.generation = 0;
    if (_seed) {
        _population.individuals = _seed->individuals;
        // Re-number so new children continue above the seeds.
        for (Individual& ind : _population.individuals) {
            if (ind.id >= _nextId)
                _nextId = ind.id + 1;
        }
        // Top up or trim to the configured population size.
        while (static_cast<int>(_population.individuals.size()) <
               _params.populationSize)
            _population.individuals.push_back(randomIndividual());
        if (static_cast<int>(_population.individuals.size()) >
            _params.populationSize)
            _population.individuals.resize(
                static_cast<std::size_t>(_params.populationSize));
    } else {
        _population.individuals.reserve(
            static_cast<std::size_t>(_params.populationSize));
        for (int i = 0; i < _params.populationSize; ++i)
            _population.individuals.push_back(randomIndividual());
    }
    if (_analytics) {
        // Individuals carried over from a seed file keep their original
        // ids and parents, which may predate this run's ledger — they
        // are recorded as "resumed"; random top-ups past the seed-file
        // count are ordinary seeds.
        const std::size_t carried =
            _seed ? std::min(_seed->individuals.size(),
                             _population.individuals.size())
                  : 0;
        for (std::size_t i = 0; i < _population.individuals.size(); ++i)
            _analytics->recordSeed(0, _population.individuals[i],
                                   i < carried);
    }
    evaluatePopulation();
}

Population
Engine::breed()
{
    const bool record = timed();
    const double breedStart = record ? stats::nowUs() : 0.0;
    _breedTiming = {};

    Population next;
    next.generation = _population.generation + 1;
    next.individuals.reserve(
        static_cast<std::size_t>(_params.populationSize));

    if (_params.elitism) {
        // The elite keeps its id, measurements and fitness: it is the
        // same individual, not a copy to re-measure.
        next.individuals.push_back(_population.best());
        if (_analytics)
            _analytics->recordEliteCopy(next.generation,
                                        next.individuals.back());
    }

    std::vector<std::uint32_t> mutated1, mutated2;
    while (static_cast<int>(next.individuals.size()) <
           _params.populationSize) {
        const double mark0 = record ? stats::nowUs() : 0.0;
        const Individual& p1 =
            _population.individuals[selectParent(_population, _params,
                                                 _rng)];
        const Individual& p2 =
            _population.individuals[selectParent(_population, _params,
                                                 _rng)];
        const double mark1 = record ? stats::nowUs() : 0.0;
        auto [c1, c2] = crossover(p1, p2, _params, _rng);
        const double mark2 = record ? stats::nowUs() : 0.0;
        if (_analytics) {
            mutated1.clear();
            mutated2.clear();
        }
        mutate(c1, _lib, _params, _rng,
               _analytics ? &mutated1 : nullptr);
        mutate(c2, _lib, _params, _rng,
               _analytics ? &mutated2 : nullptr);
        if (record) {
            const double mark3 = stats::nowUs();
            _breedTiming.selectionUs += mark1 - mark0;
            _breedTiming.crossoverUs += mark2 - mark1;
            _breedTiming.mutationUs += mark3 - mark2;
        }
        c1.id = _nextId++;
        c2.id = _nextId++;
        if (_analytics)
            _analytics->recordChild(next.generation, c1, mutated1);
        next.individuals.push_back(std::move(c1));
        if (static_cast<int>(next.individuals.size()) <
            _params.populationSize) {
            if (_analytics)
                _analytics->recordChild(next.generation, c2, mutated2);
            next.individuals.push_back(std::move(c2));
        }
    }
    if (_trace) {
        _trace->completeEvent(
            "breed", "phase", 0, breedStart,
            stats::nowUs() - breedStart,
            {{"generation", static_cast<double>(next.generation)}});
    }
    return next;
}

bool
Engine::step()
{
    if (!_initialized)
        fatal("step() before initialize()");
    if (_population.generation + 1 >= _params.generations)
        return false;
    if (stagnated())
        return false;
    _population = breed();
    evaluatePopulation();
    if (_population.generation + 1 >= _params.generations)
        return false;
    return !stagnated();
}

bool
Engine::stagnated() const
{
    const int limit = _params.stagnationLimit;
    if (limit <= 0 ||
        static_cast<int>(_history.size()) <= limit)
        return false;
    const double now = _history.back().bestFitness;
    const double then =
        _history[_history.size() - 1 - static_cast<std::size_t>(limit)]
            .bestFitness;
    return now <= then;
}

const Population&
Engine::run()
{
    if (!_initialized)
        initialize();
    while (step()) {
        // Work happens in step().
    }
    return _population;
}

const Individual&
Engine::bestEver() const
{
    if (!_bestEver)
        panic("bestEver() before any evaluation");
    return *_bestEver;
}

} // namespace core
} // namespace gest
