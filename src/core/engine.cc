#include "core/engine.hh"

#include "util/logging.hh"

namespace gest {
namespace core {

Engine::Engine(GaParams params, const isa::InstructionLibrary& lib,
               measure::Measurement& measurement,
               fitness::Fitness& fitness)
    : _params(params), _lib(lib), _measurement(measurement),
      _fitness(fitness), _rng(params.seed)
{
    _params.validate();
    if (lib.numInstructions() == 0)
        fatal("the GA needs a non-empty instruction library");
}

void
Engine::setSeedPopulation(Population seed)
{
    if (_initialized)
        fatal("seed population must be installed before initialize()");
    if (seed.individuals.empty())
        fatal("seed population is empty");
    for (const Individual& ind : seed.individuals) {
        if (static_cast<int>(ind.code.size()) != _params.individualSize)
            fatal("seed individual ", ind.id, " has ", ind.code.size(),
                  " instructions but the configuration asks for ",
                  _params.individualSize);
        for (const isa::InstructionInstance& inst : ind.code) {
            if (!_lib.valid(inst))
                fatal("seed individual ", ind.id,
                      " contains an instruction encoding that is invalid "
                      "for the current library");
        }
    }
    _seed = std::move(seed);
}

void
Engine::setGenerationCallback(GenerationCallback callback)
{
    _callback = std::move(callback);
}

Individual
Engine::randomIndividual()
{
    Individual ind;
    ind.id = _nextId++;
    ind.code.reserve(static_cast<std::size_t>(_params.individualSize));
    for (int i = 0; i < _params.individualSize; ++i)
        ind.code.push_back(_lib.randomInstance(_rng));
    return ind;
}

void
Engine::evaluate(Individual& ind)
{
    if (ind.evaluated)
        return;
    ind.measurements = _measurement.measure(ind.code).values;
    ind.fitness = _fitness.getFitness(ind, _lib);
    ind.evaluated = true;
    ++_evaluations;
}

void
Engine::evaluatePopulation()
{
    for (Individual& ind : _population.individuals)
        evaluate(ind);

    const Individual& best = _population.best();
    if (!_bestEver || best.fitness > _bestEver->fitness)
        _bestEver = best;

    GenerationRecord record;
    record.generation = _population.generation;
    record.bestFitness = best.fitness;
    record.averageFitness = _population.averageFitness();
    record.bestId = best.id;
    record.bestUniqueInstructions = uniqueInstructionCount(best);
    record.bestBreakdown = classBreakdown(_lib, best);
    record.diversity = _population.genotypeDiversity();
    _history.push_back(record);

    if (_callback)
        _callback(_population, record);
}

void
Engine::initialize()
{
    if (_initialized)
        fatal("engine initialized twice");
    _initialized = true;

    _population = Population{};
    _population.generation = 0;
    if (_seed) {
        _population.individuals = _seed->individuals;
        // Re-number so new children continue above the seeds.
        for (Individual& ind : _population.individuals) {
            if (ind.id >= _nextId)
                _nextId = ind.id + 1;
        }
        // Top up or trim to the configured population size.
        while (static_cast<int>(_population.individuals.size()) <
               _params.populationSize)
            _population.individuals.push_back(randomIndividual());
        if (static_cast<int>(_population.individuals.size()) >
            _params.populationSize)
            _population.individuals.resize(
                static_cast<std::size_t>(_params.populationSize));
    } else {
        _population.individuals.reserve(
            static_cast<std::size_t>(_params.populationSize));
        for (int i = 0; i < _params.populationSize; ++i)
            _population.individuals.push_back(randomIndividual());
    }
    evaluatePopulation();
}

Population
Engine::breed()
{
    Population next;
    next.generation = _population.generation + 1;
    next.individuals.reserve(
        static_cast<std::size_t>(_params.populationSize));

    if (_params.elitism) {
        // The elite keeps its id, measurements and fitness: it is the
        // same individual, not a copy to re-measure.
        next.individuals.push_back(_population.best());
    }

    while (static_cast<int>(next.individuals.size()) <
           _params.populationSize) {
        const Individual& p1 =
            _population.individuals[selectParent(_population, _params,
                                                 _rng)];
        const Individual& p2 =
            _population.individuals[selectParent(_population, _params,
                                                 _rng)];
        auto [c1, c2] = crossover(p1, p2, _params, _rng);
        mutate(c1, _lib, _params, _rng);
        mutate(c2, _lib, _params, _rng);
        c1.id = _nextId++;
        c2.id = _nextId++;
        next.individuals.push_back(std::move(c1));
        if (static_cast<int>(next.individuals.size()) <
            _params.populationSize)
            next.individuals.push_back(std::move(c2));
    }
    return next;
}

bool
Engine::step()
{
    if (!_initialized)
        fatal("step() before initialize()");
    if (_population.generation + 1 >= _params.generations)
        return false;
    if (stagnated())
        return false;
    _population = breed();
    evaluatePopulation();
    if (_population.generation + 1 >= _params.generations)
        return false;
    return !stagnated();
}

bool
Engine::stagnated() const
{
    const int limit = _params.stagnationLimit;
    if (limit <= 0 ||
        static_cast<int>(_history.size()) <= limit)
        return false;
    const double now = _history.back().bestFitness;
    const double then =
        _history[_history.size() - 1 - static_cast<std::size_t>(limit)]
            .bestFitness;
    return now <= then;
}

const Population&
Engine::run()
{
    if (!_initialized)
        initialize();
    while (step()) {
        // Work happens in step().
    }
    return _population;
}

const Individual&
Engine::bestEver() const
{
    if (!_bestEver)
        panic("bestEver() before any evaluation");
    return *_bestEver;
}

} // namespace core
} // namespace gest
