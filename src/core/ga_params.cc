#include "core/ga_params.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace core {

const char*
toString(CrossoverOperator op)
{
    switch (op) {
      case CrossoverOperator::OnePoint: return "one_point";
      case CrossoverOperator::Uniform: return "uniform";
    }
    return "?";
}

CrossoverOperator
crossoverFromString(const std::string& name)
{
    const std::string n = toLower(trim(name));
    if (n == "one_point" || n == "onepoint" || n == "one-point")
        return CrossoverOperator::OnePoint;
    if (n == "uniform")
        return CrossoverOperator::Uniform;
    fatal("unknown crossover operator '", name, "'");
}

const char*
toString(SelectionMethod method)
{
    switch (method) {
      case SelectionMethod::Tournament: return "tournament";
      case SelectionMethod::Roulette: return "roulette";
    }
    return "?";
}

SelectionMethod
selectionFromString(const std::string& name)
{
    const std::string n = toLower(trim(name));
    if (n == "tournament" || n == "tournament_selection")
        return SelectionMethod::Tournament;
    if (n == "roulette" || n == "roulette_wheel")
        return SelectionMethod::Roulette;
    fatal("unknown selection method '", name, "'");
}

double
GaParams::mutationRateForSize(int individual_size)
{
    if (individual_size <= 0)
        fatal("individual size must be positive");
    return 1.0 / static_cast<double>(individual_size);
}

int
GaParams::didtLoopLength(double ipc, double freq_ghz, double resonance_hz)
{
    if (ipc <= 0.0 || freq_ghz <= 0.0 || resonance_hz <= 0.0)
        fatal("dI/dt loop-length rule needs positive inputs");
    const double instructions = ipc * freq_ghz * 1e9 / resonance_hz;
    int length = static_cast<int>(std::lround(instructions));
    if (length < 2)
        length = 2;
    return length;
}

void
GaParams::validate() const
{
    if (populationSize < 2)
        fatal("population_size must be at least 2, got ", populationSize);
    if (individualSize < 1)
        fatal("individual size must be positive, got ", individualSize);
    if (mutationRate < 0.0 || mutationRate > 1.0)
        fatal("mutation_rate must be in [0,1], got ", mutationRate);
    if (operandMutationProb < 0.0 || operandMutationProb > 1.0)
        fatal("operand mutation probability must be in [0,1], got ",
              operandMutationProb);
    if (tournamentSize < 1 || tournamentSize > populationSize)
        fatal("tournament_size must be in [1, population_size], got ",
              tournamentSize);
    if (generations < 1)
        fatal("generations must be positive, got ", generations);
    if (stagnationLimit < 0)
        fatal("stagnation limit must be non-negative, got ",
              stagnationLimit);
    if (threads < 1)
        fatal("threads must be positive, got ", threads);
    if (fitnessCacheSize < 0)
        fatal("fitness_cache_size must be non-negative, got ",
              fitnessCacheSize);
}

} // namespace core
} // namespace gest
