/**
 * @file
 * Genome-keyed fitness cache.
 *
 * Crossover with elitism and tournament selection routinely re-creates
 * genomes the engine already measured — identical children of identical
 * parents, mutations that cancel out, converged populations full of
 * clones. Measurement is all of the runtime (the superscalar timing
 * model here, a 5-second hardware run in the paper), so a duplicate
 * genome should never reach the simulator twice. The cache maps a full
 * genome — FNV-1a hash for the index, full gene-by-gene equality to
 * guard against collisions — to the measurement vector and fitness it
 * produced, with a bounded LRU eviction policy.
 *
 * Only valid for measurements that are pure functions of the code. For
 * NoisyMeasurement a hit replays the first draw instead of sampling
 * fresh noise; see docs/parallelism.md for the semantics.
 */

#ifndef GEST_CORE_FITNESS_CACHE_HH
#define GEST_CORE_FITNESS_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"

namespace gest {
namespace core {

/** FNV-1a over a genome: every defIndex and operand choice. */
std::uint64_t genomeHash(
    const std::vector<isa::InstructionInstance>& code);

/**
 * Bounded LRU map from genome to (measurements, fitness). Not
 * thread-safe: the engine consults it on the coordinating thread only,
 * before and after fanning a generation out to the worker pool.
 */
class FitnessCache
{
  public:
    /** What evaluating one genome produced. */
    struct Entry
    {
        std::vector<double> measurements;
        double fitness = 0.0;
    };

    /** @param capacity maximum cached genomes (must be positive). */
    explicit FitnessCache(std::size_t capacity);

    /**
     * Look a genome up, promoting it to most-recently-used.
     * @return the cached entry, or nullptr on a miss. The pointer is
     *         invalidated by the next insert().
     */
    const Entry* lookup(const std::vector<isa::InstructionInstance>& code);

    /** Insert (or refresh) a genome's entry, evicting the LRU tail. */
    void insert(const std::vector<isa::InstructionInstance>& code,
                Entry entry);

    /** Cached genomes. */
    std::size_t size() const { return _lru.size(); }

    /** Configured capacity. */
    std::size_t capacity() const { return _capacity; }

    /** Lifetime lookup hits. */
    std::uint64_t hits() const { return _hits; }

    /** Lifetime lookup misses. */
    std::uint64_t misses() const { return _misses; }

  private:
    struct Node
    {
        std::vector<isa::InstructionInstance> code;
        std::uint64_t hash = 0;
        Entry entry;
    };

    using NodeList = std::list<Node>;

    /** Find a node by genome without touching the counters. */
    NodeList::iterator find(
        std::uint64_t hash,
        const std::vector<isa::InstructionInstance>& code);

    void evict();

    NodeList _lru; ///< front = most recently used
    std::unordered_map<std::uint64_t, std::vector<NodeList::iterator>>
        _index;
    std::size_t _capacity;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace core
} // namespace gest

#endif // GEST_CORE_FITNESS_CACHE_HH
