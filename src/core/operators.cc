#include "core/operators.hh"

#include "util/logging.hh"

namespace gest {
namespace core {

std::size_t
tournamentSelect(const Population& pop, int tournament_size, Rng& rng)
{
    if (pop.individuals.empty())
        panic("selection from an empty population");
    std::size_t best = rng.pickIndex(pop.individuals.size());
    for (int round = 1; round < tournament_size; ++round) {
        const std::size_t candidate =
            rng.pickIndex(pop.individuals.size());
        if (pop.individuals[candidate].fitness >
            pop.individuals[best].fitness)
            best = candidate;
    }
    return best;
}

std::size_t
rouletteSelect(const Population& pop, Rng& rng)
{
    if (pop.individuals.empty())
        panic("selection from an empty population");

    double min_fitness = pop.individuals.front().fitness;
    for (const Individual& ind : pop.individuals)
        min_fitness = std::min(min_fitness, ind.fitness);
    // Shift so the weakest individual still gets a sliver of wheel.
    const double shift = -min_fitness + 1e-12;

    double total = 0.0;
    for (const Individual& ind : pop.individuals)
        total += ind.fitness + shift;
    if (total <= 0.0)
        return rng.pickIndex(pop.individuals.size());

    double ticket = rng.nextDouble() * total;
    for (std::size_t i = 0; i < pop.individuals.size(); ++i) {
        ticket -= pop.individuals[i].fitness + shift;
        if (ticket <= 0.0)
            return i;
    }
    return pop.individuals.size() - 1;
}

std::size_t
selectParent(const Population& pop, const GaParams& params, Rng& rng)
{
    switch (params.selection) {
      case SelectionMethod::Tournament:
        return tournamentSelect(pop, params.tournamentSize, rng);
      case SelectionMethod::Roulette:
        return rouletteSelect(pop, rng);
    }
    panic("unhandled selection method");
}

namespace {

/** Fresh child with cleared measurements, inheriting nothing yet. */
Individual
childOf(const Individual& p1, const Individual& p2)
{
    Individual child;
    child.parent1 = p1.id;
    child.parent2 = p2.id;
    return child;
}

} // namespace

std::pair<Individual, Individual>
onePointCrossover(const Individual& p1, const Individual& p2, Rng& rng)
{
    if (p1.code.size() != p2.code.size())
        panic("crossover between individuals of different sizes (",
              p1.code.size(), " vs ", p2.code.size(), ")");
    const std::size_t n = p1.code.size();

    Individual c1 = childOf(p1, p2);
    Individual c2 = childOf(p2, p1);
    c1.code.reserve(n);
    c2.code.reserve(n);

    // Cut in [1, n-1] so both parents contribute (n >= 2); with a
    // single-instruction individual the children are clones.
    const std::size_t cut =
        n >= 2 ? 1 + rng.pickIndex(n - 1) : n;
    for (std::size_t i = 0; i < n; ++i) {
        const bool first_half = i < cut;
        c1.code.push_back(first_half ? p1.code[i] : p2.code[i]);
        c2.code.push_back(first_half ? p2.code[i] : p1.code[i]);
    }
    return {std::move(c1), std::move(c2)};
}

std::pair<Individual, Individual>
uniformCrossover(const Individual& p1, const Individual& p2, Rng& rng)
{
    if (p1.code.size() != p2.code.size())
        panic("crossover between individuals of different sizes (",
              p1.code.size(), " vs ", p2.code.size(), ")");
    const std::size_t n = p1.code.size();

    Individual c1 = childOf(p1, p2);
    Individual c2 = childOf(p2, p1);
    c1.code.reserve(n);
    c2.code.reserve(n);

    for (std::size_t i = 0; i < n; ++i) {
        const bool swap = rng.nextBool(0.5);
        c1.code.push_back(swap ? p2.code[i] : p1.code[i]);
        c2.code.push_back(swap ? p1.code[i] : p2.code[i]);
    }
    return {std::move(c1), std::move(c2)};
}

std::pair<Individual, Individual>
crossover(const Individual& p1, const Individual& p2,
          const GaParams& params, Rng& rng)
{
    switch (params.crossover) {
      case CrossoverOperator::OnePoint:
        return onePointCrossover(p1, p2, rng);
      case CrossoverOperator::Uniform:
        return uniformCrossover(p1, p2, rng);
    }
    panic("unhandled crossover operator");
}

int
mutate(Individual& ind, const isa::InstructionLibrary& lib,
       const GaParams& params, Rng& rng,
       std::vector<std::uint32_t>* mutated_out)
{
    int mutated = 0;
    for (std::size_t i = 0; i < ind.code.size(); ++i) {
        isa::InstructionInstance& inst = ind.code[i];
        if (!rng.nextBool(params.mutationRate))
            continue;
        ++mutated;
        if (mutated_out)
            mutated_out->push_back(static_cast<std::uint32_t>(i));
        if (rng.nextBool(params.operandMutationProb) &&
            !inst.operandChoice.empty()) {
            lib.mutateOperand(inst, rng);
        } else {
            inst = lib.randomInstance(rng);
        }
    }
    return mutated;
}

} // namespace core
} // namespace gest
