/**
 * @file
 * The GA individual: a sequence of assembly instructions (§III.A).
 */

#ifndef GEST_CORE_INDIVIDUAL_HH
#define GEST_CORE_INDIVIDUAL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/library.hh"

namespace gest {
namespace core {

/**
 * One candidate stress-test: the loop body the GA evolves, plus its
 * lineage and measurement record.
 */
struct Individual
{
    /** The loop body, one gene per instruction. */
    std::vector<isa::InstructionInstance> code;

    /** Unique id within the run (assigned by the engine). */
    std::uint64_t id = 0;

    /** Parent ids (0 = none; seed individuals have no parents). */
    std::uint64_t parent1 = 0;
    std::uint64_t parent2 = 0;

    /** Measurement vector, in the measurement's valueNames() order. */
    std::vector<double> measurements;

    /** Fitness assigned by the fitness function. */
    double fitness = 0.0;

    /** Whether measurements/fitness are valid. */
    bool evaluated = false;
};

/** Render an individual's loop body, one instruction per line. */
std::vector<std::string> renderLines(const isa::InstructionLibrary& lib,
                                     const Individual& ind);

/** Count distinct instruction definitions used (unique opcodes, §V.A). */
std::size_t uniqueInstructionCount(const Individual& ind);

/** Instruction-class breakdown (Table III / Table IV rows). */
std::array<int, isa::numInstrClasses>
classBreakdown(const isa::InstructionLibrary& lib, const Individual& ind);

/** Render a class breakdown as "ShortInt=.. LongInt=.. ...". */
std::string breakdownToString(
    const std::array<int, isa::numInstrClasses>& breakdown);

} // namespace core
} // namespace gest

#endif // GEST_CORE_INDIVIDUAL_HH
