#include "core/population.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace core {

int
Population::bestIndex() const
{
    int best = -1;
    for (std::size_t i = 0; i < individuals.size(); ++i) {
        if (!individuals[i].evaluated)
            continue;
        if (best < 0 ||
            individuals[i].fitness > individuals[static_cast<std::size_t>(
                                         best)].fitness)
            best = static_cast<int>(i);
    }
    return best;
}

const Individual&
Population::best() const
{
    const int index = bestIndex();
    if (index < 0)
        panic("Population::best on a population with no evaluated "
              "individuals");
    return individuals[static_cast<std::size_t>(index)];
}

double
Population::genotypeDiversity() const
{
    if (individuals.empty())
        return 0.0;
    std::size_t max_len = 0;
    for (const Individual& ind : individuals)
        max_len = std::max(max_len, ind.code.size());
    if (max_len == 0)
        return 0.0;

    double sum = 0.0;
    std::set<std::uint32_t> seen;
    for (std::size_t pos = 0; pos < max_len; ++pos) {
        seen.clear();
        std::size_t present = 0;
        for (const Individual& ind : individuals) {
            if (pos < ind.code.size()) {
                seen.insert(ind.code[pos].defIndex);
                ++present;
            }
        }
        if (present > 0)
            sum += static_cast<double>(seen.size()) /
                   static_cast<double>(present);
    }
    return sum / static_cast<double>(max_len);
}

double
Population::averageFitness() const
{
    double sum = 0.0;
    int count = 0;
    for (const Individual& ind : individuals) {
        if (ind.evaluated) {
            sum += ind.fitness;
            ++count;
        }
    }
    return count > 0 ? sum / count : 0.0;
}

std::string
serializePopulation(const isa::InstructionLibrary& lib,
                    const Population& pop)
{
    std::ostringstream os;
    os.precision(17);
    os << "gest-population 1\n";
    os << "generation " << pop.generation << "\n";
    for (const Individual& ind : pop.individuals) {
        os << "individual " << ind.id << " " << ind.parent1 << " "
           << ind.parent2 << " " << ind.fitness << " "
           << (ind.evaluated ? 1 : 0) << "\n";
        os << "measurements " << ind.measurements.size();
        for (double v : ind.measurements)
            os << " " << v;
        os << "\n";
        os << "code " << ind.code.size() << "\n";
        for (const isa::InstructionInstance& inst : ind.code) {
            os << lib.instruction(inst.defIndex).name;
            for (std::uint32_t choice : inst.operandChoice)
                os << " " << choice;
            os << "\n";
        }
    }
    os << "end\n";
    return os.str();
}

namespace {

[[noreturn]] void
badFormat(std::size_t line_no, const std::string& why)
{
    fatal("malformed population file at line ", line_no, ": ", why);
}

} // namespace

Population
deserializePopulation(const isa::InstructionLibrary& lib,
                      const std::string& text)
{
    const std::vector<std::string> lines = split(text, '\n');
    std::size_t pos = 0;

    auto next_line = [&]() -> std::string {
        while (pos < lines.size()) {
            const std::string t = trim(lines[pos++]);
            if (!t.empty())
                return t;
        }
        badFormat(pos, "unexpected end of file");
    };

    Population pop;
    {
        const std::vector<std::string> header =
            splitWhitespace(next_line());
        if (header.size() != 2 || header[0] != "gest-population" ||
            header[1] != "1")
            badFormat(pos, "missing 'gest-population 1' header");
    }
    {
        const std::vector<std::string> gen = splitWhitespace(next_line());
        if (gen.size() != 2 || gen[0] != "generation")
            badFormat(pos, "missing 'generation' record");
        pop.generation =
            static_cast<int>(parseInt(gen[1], "generation"));
    }

    for (;;) {
        const std::string line = next_line();
        if (line == "end")
            break;
        const std::vector<std::string> fields = splitWhitespace(line);
        if (fields.size() != 6 || fields[0] != "individual")
            badFormat(pos, "expected 'individual' record, got '" + line +
                               "'");
        Individual ind;
        ind.id = static_cast<std::uint64_t>(parseInt(fields[1], "id"));
        ind.parent1 =
            static_cast<std::uint64_t>(parseInt(fields[2], "parent1"));
        ind.parent2 =
            static_cast<std::uint64_t>(parseInt(fields[3], "parent2"));
        ind.fitness = parseDouble(fields[4], "fitness");
        ind.evaluated = parseInt(fields[5], "evaluated") != 0;

        const std::vector<std::string> meas =
            splitWhitespace(next_line());
        if (meas.size() < 2 || meas[0] != "measurements")
            badFormat(pos, "expected 'measurements' record");
        const std::size_t n_meas = static_cast<std::size_t>(
            parseInt(meas[1], "measurement count"));
        if (meas.size() != n_meas + 2)
            badFormat(pos, "measurement count mismatch");
        for (std::size_t i = 0; i < n_meas; ++i)
            ind.measurements.push_back(
                parseDouble(meas[i + 2], "measurement value"));

        const std::vector<std::string> code = splitWhitespace(next_line());
        if (code.size() != 2 || code[0] != "code")
            badFormat(pos, "expected 'code' record");
        const std::size_t n_code = static_cast<std::size_t>(
            parseInt(code[1], "code length"));
        for (std::size_t i = 0; i < n_code; ++i) {
            const std::vector<std::string> gene =
                splitWhitespace(next_line());
            if (gene.empty())
                badFormat(pos, "empty instruction record");
            const int def_index = lib.findInstruction(gene[0]);
            if (def_index < 0)
                fatal("population file references instruction '", gene[0],
                      "' which is not in the current library");
            isa::InstructionInstance inst;
            inst.defIndex = static_cast<std::uint32_t>(def_index);
            for (std::size_t f = 1; f < gene.size(); ++f)
                inst.operandChoice.push_back(static_cast<std::uint32_t>(
                    parseInt(gene[f], "operand choice")));
            if (!lib.valid(inst))
                fatal("population file contains an invalid encoding of "
                      "instruction '", gene[0], "'");
            ind.code.push_back(std::move(inst));
        }
        pop.individuals.push_back(std::move(ind));
    }
    return pop;
}

void
savePopulation(const isa::InstructionLibrary& lib, const Population& pop,
               const std::string& path)
{
    writeFile(path, serializePopulation(lib, pop));
}

Population
loadPopulation(const isa::InstructionLibrary& lib, const std::string& path)
{
    return deserializePopulation(lib, readFile(path));
}

} // namespace core
} // namespace gest
