/**
 * @file
 * Baseline workloads.
 *
 * Every figure in the paper compares the GA virus against conventional
 * benchmarks and hand-written stress-tests (coremark/imdct/fdct on the
 * Versatile Express boards, Parsec and NAS on the X-Gene2, Prime95 and
 * the AMD stability test on the Athlon). The real binaries are not
 * reproducible here, so each baseline is a fixed loop kernel with the
 * characteristic instruction mix and dependency structure of the
 * original: the figures only need their *relative* activity profiles.
 */

#ifndef GEST_WORKLOADS_WORKLOADS_HH
#define GEST_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "isa/library.hh"

namespace gest {
namespace workloads {

/** A named fixed instruction sequence runnable on a platform. */
struct Workload
{
    std::string name;
    std::vector<isa::InstructionInstance> code;
};

/**
 * Bare-metal baselines for the ARM library (Figures 5 and 6): coremark,
 * imdct, fdct, and the hand-written A15/A7 stress tests.
 */
std::vector<Workload> armBareMetalBaselines(
    const isa::InstructionLibrary& lib);

/**
 * Server baselines for the X-Gene2 run (Figure 7): Parsec-like and
 * NAS-like kernels.
 */
std::vector<Workload> serverBaselines(const isa::InstructionLibrary& lib);

/**
 * Desktop x86 baselines for the Athlon dI/dt study (Figures 8 and 9):
 * Prime95-like, the AMD-stability-test-like kernel and conventional
 * workloads.
 */
std::vector<Workload> x86Baselines(const isa::InstructionLibrary& lib);

/** Find a workload by name in a baseline set; fatal() if absent. */
const Workload& byName(const std::vector<Workload>& set,
                       const std::string& name);

} // namespace workloads
} // namespace gest

#endif // GEST_WORKLOADS_WORKLOADS_HH
