#include "workloads/workloads.hh"

#include <functional>

#include "util/logging.hh"

namespace gest {
namespace workloads {

namespace {

/** Terse instance-builder bound to one library. */
class Builder
{
  public:
    explicit Builder(const isa::InstructionLibrary& lib) : _lib(lib) {}

    Builder&
    add(std::string_view name, std::vector<std::string> values = {})
    {
        _code.push_back(_lib.makeInstance(name, values));
        return *this;
    }

    /** Repeat the instructions added by @p fill @p times times. */
    Builder&
    repeat(int times, const std::function<void(Builder&)>& fill)
    {
        for (int i = 0; i < times; ++i)
            fill(*this);
        return *this;
    }

    std::vector<isa::InstructionInstance>
    take()
    {
        return std::move(_code);
    }

  private:
    const isa::InstructionLibrary& _lib;
    std::vector<isa::InstructionInstance> _code;
};

std::string
imm(int value)
{
    return std::to_string(value);
}

} // namespace

std::vector<Workload>
armBareMetalBaselines(const isa::InstructionLibrary& lib)
{
    std::vector<Workload> out;

    // coremark-like: list/matrix/state-machine integer code — dependent
    // ALU chains, moderate memory traffic, frequent branches.
    {
        Builder b(lib);
        for (int block = 0; block < 4; ++block) {
            const int off = block * 32;
            b.add("LDR", {"x2", "x10", imm(off)});
            b.add("ADD", {"x4", "x4", "x5"});
            b.add("SUB", {"x5", "x4", "x6"});
            b.add("EOR", {"x6", "x5", "x7"});
            b.add("LSL", {"x7", "x8", "3"});
            b.add("MUL", {"x8", "x8", "x9"});
            b.add("STR", {"x4", "x10", imm(off + 128)});
            b.add("BNE");
            b.add("ADD", {"x9", "x9", "x4"});
            b.add("ORR", {"x4", "x6", "x8"});
        }
        out.push_back({"coremark", b.take()});
    }

    // imdct-like: fixed-point butterflies — multiply-accumulate heavy
    // with streaming loads/stores.
    {
        Builder b(lib);
        for (int block = 0; block < 5; ++block) {
            const int off = block * 16;
            b.add("LDR", {"x2", "x10", imm(off)});
            b.add("LDR", {"x3", "x10", imm(off + 64)});
            b.add("MUL", {"x4", "x5", "x6"});
            b.add("MADD", {"x5", "x6", "x7", "x8"});
            b.add("ADD", {"x6", "x7", "x8"});
            b.add("MADD", {"x7", "x8", "x9", "x4"});
            b.add("STR", {"x5", "x10", imm(off + 128)});
            b.add("SUB", {"x8", "x9", "x4"});
        }
        out.push_back({"imdct", b.take()});
    }

    // fdct-like: shift/add dominated with fewer multiplies.
    {
        Builder b(lib);
        for (int block = 0; block < 5; ++block) {
            const int off = block * 24;
            b.add("LDR", {"x2", "x10", imm(off)});
            b.add("ADD", {"x4", "x4", "x5"});
            b.add("SUB", {"x5", "x6", "x7"});
            b.add("LSL", {"x6", "x7", "11"});
            b.add("LSL", {"x7", "x8", "8"});
            b.add("ADD", {"x8", "x9", "x4"});
            b.add("MUL", {"x9", "x4", "x5"});
            b.add("STR", {"x4", "x10", imm(off + 96)});
        }
        out.push_back({"fdct", b.take()});
    }

    // A15 manual stress-test: the classic human power virus — dense,
    // mostly independent NEON multiplies with streaming vector loads and
    // a little integer filler. Strong, but it leaves the LSU and the
    // integer pipes underused compared to the GA's balance.
    {
        Builder b(lib);
        const char* v[8] = {"v0", "v1", "v2", "v3",
                            "v4", "v5", "v6", "v7"};
        for (int round = 0; round < 5; ++round) {
            for (int reg = 0; reg < 6; ++reg)
                b.add("FMUL", {v[reg], v[(reg + 2) % 8],
                               v[(reg + 5) % 8]});
            b.add("LDRQ", {"q" + std::to_string(round % 8), "x10",
                           imm(round * 16)});
            b.add("FADD", {v[(round + 6) % 8], v[(round + 1) % 8],
                           v[(round + 4) % 8]});
            b.add("ADD", {"x4", "x4", "x5"});
            b.add("MUL", {"x5", "x6", "x7"});
        }
        out.push_back({"A15manual_stress_test", b.take()});
    }

    // A7 manual stress-test: a human targeting the LITTLE core mixes
    // integer, memory and some NEON to keep both issue slots busy — but
    // underestimates how much of the small core's power is in the fetch
    // and branch path, which the GA discovers.
    {
        Builder b(lib);
        for (int round = 0; round < 5; ++round) {
            const int off = round * 32;
            b.add("ADD", {"x4", "x4", "x5"});
            b.add("MUL", {"x5", "x6", "x7"});
            b.add("LDR", {"x2", "x10", imm(off)});
            b.add("EOR", {"x6", "x7", "x8"});
            b.add("FMULS", {"d" + std::to_string(round % 8),
                            "d" + std::to_string((round + 2) % 8),
                            "d" + std::to_string((round + 5) % 8)});
            b.add("SUB", {"x7", "x8", "x9"});
            b.add("STR", {"x8", "x10", imm(off + 96)});
            b.add("ADD", {"x8", "x9", "x4"});
            b.add("LSL", {"x9", "x4", "7"});
            b.add("BNE");
        }
        out.push_back({"A7manual_stress_test", b.take()});
    }

    return out;
}

std::vector<Workload>
serverBaselines(const isa::InstructionLibrary& lib)
{
    std::vector<Workload> out;

    // Parsec-like kernels.
    {
        // bodytrack: balanced FP/int/memory vision code.
        Builder b(lib);
        for (int block = 0; block < 4; ++block) {
            const int off = block * 32;
            b.add("LDR", {"x2", "x10", imm(off)});
            b.add("FMULS", {"d0", "d1", "d2"});
            b.add("FADDS", {"d1", "d2", "d3"});
            b.add("ADD", {"x4", "x4", "x5"});
            b.add("SUB", {"x5", "x6", "x7"});
            b.add("LDR", {"x3", "x10", imm(off + 64)});
            b.add("MUL", {"x6", "x7", "x8"});
            b.add("STR", {"x4", "x10", imm(off + 160)});
            b.add("BNE");
            b.add("FMULS", {"d2", "d3", "d4"});
        }
        out.push_back({"bodytrack", b.take()});
    }
    {
        // x264: SIMD integer + memory.
        Builder b(lib);
        for (int block = 0; block < 5; ++block) {
            const int off = block * 16;
            b.add("LDRQ", {"q" + std::to_string(block % 8), "x10",
                           imm(off)});
            b.add("FADD", {"v0", "v1", "v2"});
            b.add("VAND", {"v1", "v2", "v3"});
            b.add("ADD", {"x4", "x4", "x5"});
            b.add("STRQ", {"q" + std::to_string((block + 4) % 8), "x10",
                           imm(off + 128)});
            b.add("EOR", {"x5", "x6", "x7"});
            b.add("BNE");
        }
        out.push_back({"x264", b.take()});
    }
    {
        // swaptions: scalar-FP Monte Carlo.
        Builder b(lib);
        for (int block = 0; block < 6; ++block) {
            b.add("FMULS", {"d0", "d1", "d2"});
            b.add("FADDS", {"d1", "d2", "d3"});
            b.add("FMULS", {"d2", "d3", "d4"});
            b.add("FADDS", {"d3", "d4", "d5"});
            b.add("ADD", {"x4", "x4", "x5"});
            b.add("LDR", {"x2", "x10", imm(block * 16)});
        }
        out.push_back({"swaptions", b.take()});
    }
    {
        // canneal: pointer chasing — dependent loads.
        Builder b(lib);
        for (int block = 0; block < 8; ++block) {
            b.add("LDR", {"x2", "x10", imm(block * 32)});
            b.add("ADD", {"x4", "x4", "x5"});
            b.add("LDR", {"x3", "x10", imm(block * 32 + 8)});
            b.add("EOR", {"x5", "x5", "x6"});
            b.add("BNE");
        }
        out.push_back({"canneal", b.take()});
    }
    {
        // streamcluster: distance computations, FP + streaming loads.
        Builder b(lib);
        for (int block = 0; block < 5; ++block) {
            const int off = block * 16;
            b.add("LDRQ", {"q" + std::to_string(block % 4), "x10",
                           imm(off)});
            b.add("FMUL", {"v0", "v1", "v2"});
            b.add("FADD", {"v1", "v2", "v3"});
            b.add("FMLA", {"v2", "v3", "v4"});
            b.add("SUB", {"x4", "x5", "x6"});
            b.add("BNE");
        }
        out.push_back({"streamcluster", b.take()});
    }

    // NAS-like kernels.
    {
        // cg: sparse matrix-vector — loads feeding FP adds.
        Builder b(lib);
        for (int block = 0; block < 6; ++block) {
            b.add("LDR", {"x2", "x10", imm(block * 40)});
            b.add("LDR", {"x3", "x10", imm(block * 40 + 8)});
            b.add("FMULS", {"d0", "d1", "d2"});
            b.add("FADDS", {"d1", "d0", "d3"});
            b.add("ADD", {"x4", "x4", "x5"});
        }
        out.push_back({"cg", b.take()});
    }
    {
        // mg: stencil — FP adds with neighbouring loads/stores.
        Builder b(lib);
        for (int block = 0; block < 5; ++block) {
            const int off = block * 24;
            b.add("LDR", {"x2", "x10", imm(off)});
            b.add("LDR", {"x3", "x10", imm(off + 8)});
            b.add("FADDS", {"d0", "d1", "d2"});
            b.add("FADDS", {"d1", "d2", "d3"});
            b.add("FMULS", {"d2", "d3", "d4"});
            b.add("STR", {"x4", "x10", imm(off + 160)});
        }
        out.push_back({"mg", b.take()});
    }
    {
        // ft: FFT butterflies — SIMD FP multiply-add dense.
        Builder b(lib);
        for (int block = 0; block < 6; ++block) {
            b.add("FMUL", {"v" + std::to_string(block % 4),
                           "v" + std::to_string((block + 1) % 8),
                           "v" + std::to_string((block + 2) % 8)});
            b.add("FMLA", {"v" + std::to_string((block + 4) % 8),
                           "v" + std::to_string((block + 5) % 8),
                           "v" + std::to_string((block + 6) % 8)});
            b.add("FADD", {"v" + std::to_string((block + 2) % 8),
                           "v" + std::to_string((block + 3) % 8),
                           "v" + std::to_string((block + 7) % 8)});
            b.add("LDRQ", {"q" + std::to_string(block % 8), "x10",
                           imm(block * 16)});
        }
        out.push_back({"ft", b.take()});
    }
    {
        // ep: embarrassingly parallel random numbers — pure scalar FP.
        Builder b(lib);
        for (int block = 0; block < 8; ++block) {
            b.add("FMULS", {"d" + std::to_string(block % 4),
                            "d" + std::to_string((block + 1) % 8),
                            "d" + std::to_string((block + 2) % 8)});
            b.add("FADDS", {"d" + std::to_string((block + 3) % 8),
                            "d" + std::to_string((block + 4) % 8),
                            "d" + std::to_string((block + 5) % 8)});
            b.add("MUL", {"x4", "x5", "x6"});
        }
        out.push_back({"ep", b.take()});
    }
    {
        // lu: dense linear algebra — FMA + loads.
        Builder b(lib);
        for (int block = 0; block < 5; ++block) {
            const int off = block * 16;
            b.add("LDRQ", {"q" + std::to_string(block % 8), "x10",
                           imm(off)});
            b.add("FMLA", {"v0", "v1", "v2"});
            b.add("FMLA", {"v3", "v4", "v5"});
            b.add("ADD", {"x4", "x4", "x5"});
            b.add("STR", {"x5", "x10", imm(off + 192)});
        }
        out.push_back({"lu", b.take()});
    }

    return out;
}

std::vector<Workload>
x86Baselines(const isa::InstructionLibrary& lib)
{
    std::vector<Workload> out;

    // Prime95-like: sustained dense packed-FP FFT kernel. Very high
    // steady power, little cycle-to-cycle current variation — a great
    // power virus and a poor dI/dt virus (§VI).
    {
        Builder b(lib);
        for (int block = 0; block < 8; ++block) {
            const std::string a = "xmm" + std::to_string(block % 8);
            const std::string c =
                "xmm" + std::to_string((block + 3) % 8);
            b.add("MULPD", {a, c});
            b.add("ADDPD", {c, a});
            b.add("LOADPD", {"xmm" + std::to_string((block + 5) % 8),
                             "r10", imm(block * 16)});
        }
        out.push_back({"prime95", b.take()});
    }

    // AMD-stability-test-like: mixed sustained FP/integer/memory burn.
    {
        Builder b(lib);
        for (int block = 0; block < 6; ++block) {
            b.add("MULPD", {"xmm" + std::to_string(block % 8),
                            "xmm" + std::to_string((block + 2) % 8)});
            b.add("IMUL", {"rax", "rcx"});
            b.add("ADD", {"rdx", "rbx"});
            b.add("LOAD", {"r9", "r10", imm(block * 24)});
            b.add("ADDPD", {"xmm" + std::to_string((block + 4) % 8),
                            "xmm" + std::to_string((block + 6) % 8)});
            b.add("STORE", {"rsi", "r10", imm(block * 24 + 128)});
        }
        out.push_back({"amd_stability_test", b.take()});
    }

    // coremark-like integer mix.
    {
        Builder b(lib);
        for (int block = 0; block < 6; ++block) {
            b.add("LOAD", {"r9", "r10", imm(block * 32)});
            b.add("ADD", {"rax", "rcx"});
            b.add("SUB", {"rcx", "rdx"});
            b.add("XOR", {"rdx", "rbx"});
            b.add("IMUL", {"rbx", "rsi"});
            b.add("STORE", {"rdi", "r10", imm(block * 32 + 96)});
            b.add("JNEXT");
        }
        out.push_back({"coremark", b.take()});
    }

    // Game-like: bursty mixed workload with stalls — phases of activity
    // but not tuned to any resonance.
    {
        Builder b(lib);
        for (int block = 0; block < 4; ++block) {
            b.add("MULPD", {"xmm0", "xmm1"});
            b.add("ADDPD", {"xmm1", "xmm2"});
            b.add("MULSD", {"xmm2", "xmm3"});
            b.add("LOAD", {"r9", "r10", imm(block * 40)});
            b.add("ADD", {"rax", "rcx"});
            b.add("NOP");
            b.add("NOP");
            b.add("JNEXT");
            b.add("IMUL", {"rcx", "rdx"});
            b.add("NOP");
        }
        out.push_back({"game_like", b.take()});
    }

    // Idle-like spin loop.
    {
        Builder b(lib);
        for (int i = 0; i < 10; ++i)
            b.add("NOP");
        b.add("ADD", {"rax", "rcx"});
        b.add("JNEXT");
        out.push_back({"idle_spin", b.take()});
    }

    return out;
}

const Workload&
byName(const std::vector<Workload>& set, const std::string& name)
{
    for (const Workload& w : set) {
        if (w.name == name)
            return w;
    }
    fatal("no baseline workload named '", name, "'");
}

} // namespace workloads
} // namespace gest
