/**
 * @file
 * The live telemetry plane: in-memory snapshots of a run's
 * observability artifacts served over the embedded HTTP server
 * (docs/observability.md, "Live endpoints").
 *
 * Layering: the engine's per-generation observer *pushes* snapshots in
 * (coordinator thread, one small JSON composition per generation —
 * never on the evaluation hot path), HTTP workers *pull* them out.
 * Scrape endpoints never read the disk artifacts: /status, /history
 * and /champion serve the in-memory copies, /metrics renders the
 * StatsRegistry (relaxed atomics) into Prometheus text exposition
 * format, and /events streams one Server-Sent-Event per sealed
 * generation out of a lock-free single-producer snapshot buffer. The
 * whole plane is read-only: hosting it cannot perturb the GA
 * (bit-identical run artifacts with the server on or off).
 */

#ifndef GEST_NET_TELEMETRY_HH
#define GEST_NET_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/health.hh"
#include "core/engine.hh"
#include "isa/library.hh"
#include "net/http_server.hh"

namespace gest {
namespace net {

/**
 * A bounded, append-only, lock-free snapshot buffer: one producer (the
 * engine's coordinator thread) publishes immutable payloads, any
 * number of SSE worker threads read them concurrently. Slots are
 * preallocated and published with a release store on the size counter,
 * so readers that acquire the size see fully-written payloads; nothing
 * is ever overwritten or freed while the buffer lives, which makes
 * replay-from-zero for late-connecting clients trivial and the whole
 * structure wait-free on both sides. Publishing past capacity drops
 * the event (counted), never blocks.
 */
class GenerationEventBuffer
{
  public:
    explicit GenerationEventBuffer(std::size_t capacity);
    ~GenerationEventBuffer();

    GenerationEventBuffer(const GenerationEventBuffer&) = delete;
    GenerationEventBuffer& operator=(const GenerationEventBuffer&) =
        delete;

    /**
     * Publish one payload; single producer only. @p key is the event's
     * resume key — the generation number for frames that carry an SSE
     * `id:` line, -1 for frames that do not (alerts). A client
     * reconnecting with `Last-Event-ID: N` is replayed every event
     * whose key exceeds N *plus* every keyless event, which gives
     * generation frames exactly-once and alert frames at-least-once
     * delivery across reconnects.
     */
    void publish(std::string payload, long long key = -1);

    /** Resume key of event @p i; requires i < size(). */
    long long keyAt(std::size_t i) const
    {
        return _keys[i].load(std::memory_order_relaxed);
    }

    /** Events visible so far (acquire). */
    std::size_t size() const
    {
        return _size.load(std::memory_order_acquire);
    }

    /** Event @p i; requires i < size(). */
    const std::string* at(std::size_t i) const
    {
        return _slots[i].load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return _slots.size(); }

    /** Events dropped because the buffer was full. */
    std::uint64_t dropped() const
    {
        return _dropped.load(std::memory_order_relaxed);
    }

  private:
    std::vector<std::atomic<const std::string*>> _slots;
    std::vector<std::atomic<long long>> _keys;
    std::atomic<std::size_t> _size{0};
    std::atomic<std::uint64_t> _dropped{0};
};

/**
 * Render every registered stat as Prometheus text exposition format
 * (version 0.0.4): counters and gauges one sample each, histograms as
 * native Prometheus histograms (cumulative `le` buckets, `_sum`,
 * `_count`) plus a p50/p95/p99 quantile series derived by
 * stats::Histogram::quantile — the same implementation behind
 * stats.txt and metrics.json. Metric names are `gest_` plus the stat
 * name with every non-alphanumeric character mapped to '_'.
 */
std::string renderPrometheusMetrics();

/**
 * The in-memory snapshot store behind the endpoints. All setters run
 * on the engine's coordinator thread; all getters are called
 * concurrently from HTTP workers and synchronize on one small mutex
 * (the event buffer is lock-free, see above).
 */
class TelemetryService
{
  public:
    /**
     * @param lib library the run's individuals reference (champion
     *        source rendering; must outlive the service)
     * @param total_generations the run's generation budget
     */
    TelemetryService(const isa::InstructionLibrary& lib,
                     int total_generations);

    /**
     * Ingest one sealed generation: append the history row, refresh
     * the champion on strict improvement, publish the SSE event and —
     * unless an analytics recorder supplies richer ones via
     * setStatusJson — refresh the status snapshot.
     */
    void onGenerationEvaluated(const core::Population& pop,
                               const core::GenerationRecord& record);

    /**
     * Replace the /status payload (the analytics recorder mirrors
     * every status.json it writes). Marks the status as externally
     * owned: onGenerationEvaluated stops composing its own.
     */
    void setStatusJson(std::string payload);

    /**
     * One generation's coverage-ledger state, mirrored into the
     * /coverage payload and — when the generation matches — appended
     * to that generation's history row and SSE event.
     */
    struct CoverageTick
    {
        int generation = -1;
        std::uint64_t cellsSeen = 0;
        std::uint64_t cellsTotal = 0;
        std::uint64_t newCells = 0;
        double saturationPct = 0.0;
        double noveltyRate = 0.0;
    };

    /**
     * Ingest one coverage-ledger generation (@p coverage_json becomes
     * the /coverage payload). Coordinator thread, before the same
     * generation's onGenerationEvaluated — the run driver installs the
     * ledger's observer ahead of this service's.
     */
    void noteCoverage(const CoverageTick& tick,
                      std::string coverage_json);

    std::string coverageJson() const;

    /**
     * Ingest one health-watchdog alert: append it to the /alerts
     * payload and publish an `event: alert` SSE frame. Coordinator
     * thread, from the watchdog's alert listener — the run driver
     * installs the watchdog's observer ahead of this service's, so the
     * alert frame precedes its generation's `event: generation` frame.
     * Alert frames carry no SSE id (they never advance a client's
     * Last-Event-ID), so a resumed stream redelivers them.
     */
    void noteAlert(const analysis::Alert& alert);

    /** The `/alerts` payload: every raised alert as a JSON array. */
    std::string alertsJson() const;

    /** Mark the run finished so /events streams can end gracefully. */
    void noteRunCompleted();

    /** @return whether noteRunCompleted() has been called. */
    bool completed() const
    {
        return _completed.load(std::memory_order_acquire);
    }

    std::string statusJson() const;
    std::string historyJson() const;
    std::string championJson() const;

    const GenerationEventBuffer& events() const { return _events; }

    /** Generations ingested so far (tests). */
    std::size_t generationsSeen() const;

  private:
    std::string composeStatus(const core::GenerationRecord& record)
        const;

    const isa::InstructionLibrary& _lib;
    const int _totalGenerations;
    const double _startUs;
    GenerationEventBuffer _events;

    std::atomic<bool> _completed{false};

    mutable std::mutex _mutex;
    std::string _statusJson;
    std::string _championJson;
    std::string _coverageJson;
    std::vector<std::string> _historyRows;
    std::vector<std::string> _alertRows;
    // Coordinator-thread only (written by noteCoverage, read by
    // onGenerationEvaluated on the same thread); no lock needed.
    CoverageTick _coverage;
    bool _externalStatus = false;
    double _bestFitness = 0.0;
    bool _haveChampion = false;
    std::uint64_t _totalMeasured = 0;
    std::uint64_t _totalCacheHits = 0;
};

/**
 * Glue: one TelemetryService hosted by one HttpServer with the live
 * endpoints (/metrics, /status, /history, /champion, /coverage,
 * /alerts, /events, plus /healthz and a tiny index at /) registered.
 * Construct, start(), attach observer() to the engine, run, stop().
 */
class TelemetryServer
{
  public:
    TelemetryServer(std::string listen_address,
                    const isa::InstructionLibrary& lib,
                    int total_generations,
                    HttpServer::Options options =
                        HttpServer::Options());

    /** Bind and serve; fatal() on a bad address. */
    void start();

    /** Graceful shutdown; idempotent. */
    void stop();

    /** "host:port" actually bound (valid after start()). */
    std::string address() const { return _http.address(); }

    int port() const { return _http.port(); }

    TelemetryService& service() { return _service; }
    HttpServer& http() { return _http; }

    /**
     * An engine generation observer feeding this service. Safe to
     * install alongside the run writer and flight recorder; never
     * touches the GA RNG or the run directory.
     */
    core::Engine::GenerationCallback observer();

  private:
    TelemetryService _service;
    HttpServer _http;
};

} // namespace net
} // namespace gest

#endif // GEST_NET_TELEMETRY_HH
