/**
 * @file
 * A minimal, dependency-free embedded HTTP/1.1 server for the live
 * telemetry plane (docs/observability.md, "Live endpoints").
 *
 * Design constraints, in order:
 *
 *  1. **Strictly read-only.** Only GET/HEAD are accepted; the server
 *     never mutates framework state, so hosting it cannot perturb a
 *     run (bit-identical artifacts with the server on or off).
 *  2. **Bounded.** One acceptor thread plus a small fixed worker pool;
 *     a bounded pending-connection queue (over-limit connections get
 *     an immediate 503), a request-size cap and a header-read timeout
 *     keep a misbehaving client from tying the server down.
 *  3. **Graceful shutdown.** stop() stops accepting, wakes every
 *     worker (including ones inside long-lived streaming responses,
 *     which poll stopping()) and joins all threads before returning.
 *
 * POSIX sockets only (loopback scraping is the intended use); no TLS,
 * no keep-alive, no chunked encoding — every response closes the
 * connection, which is exactly right for 1 Hz scrapers and SSE.
 */

#ifndef GEST_NET_HTTP_SERVER_HH
#define GEST_NET_HTTP_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gest {
namespace net {

/** One parsed request (request line + headers; GET/HEAD carry no body). */
struct HttpRequest
{
    std::string method;   ///< "GET" or "HEAD"
    std::string target;   ///< raw request target, e.g. "/metrics?x=1"
    std::string path;     ///< target without the query string
    std::string query;    ///< query string without the '?'; may be empty

    /** Header fields in arrival order; names lower-cased. */
    std::vector<std::pair<std::string, std::string>> headers;

    /** First value of header @p name (lower-case), or "" if absent. */
    std::string header(const std::string& name) const;
};

/** A buffered response for plain (non-streaming) handlers. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

/**
 * Write side of one open connection, handed to streaming handlers
 * (Server-Sent Events). Headers are already on the wire when the
 * handler runs; write() appends raw bytes. A streaming handler must
 * return promptly once ok() goes false (client disconnected or the
 * server is stopping).
 */
class StreamWriter
{
  public:
    /** @return false when the client is gone or the server stops. */
    bool write(const std::string& data);

    /** @return whether the connection is still worth writing to. */
    bool ok() const;

    /** Sleep briefly (@p ms capped at 100) between stream polls. */
    void waitBriefly(int ms) const;

  private:
    friend class HttpServer;
    StreamWriter(int fd, const std::atomic<bool>& stopping)
        : _fd(fd), _stopping(stopping)
    {}

    int _fd;
    bool _broken = false;
    const std::atomic<bool>& _stopping;
};

/**
 * The embedded server. Routes are exact-path matches registered before
 * start(); the handler table is immutable while the server runs, so
 * workers read it without locking.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest&)>;
    using StreamHandler =
        std::function<void(const HttpRequest&, StreamWriter&)>;

    struct Options
    {
        /** Worker threads handling accepted connections. */
        int workerThreads = 2;

        /** Pending + in-flight connection cap; beyond it: 503. */
        int maxConnections = 32;

        /** Request line + headers cap in bytes; beyond it: 431. */
        std::size_t maxRequestBytes = 8192;

        /** Timeout for reading the request head, milliseconds. */
        int requestTimeoutMs = 2000;
    };

    /**
     * @param address "host:port" to bind, e.g. "127.0.0.1:0" (port 0
     *        asks the kernel for an ephemeral port; read it back with
     *        port() after start()). Host must be a dotted IPv4 literal
     *        or "localhost".
     */
    explicit HttpServer(std::string address);
    HttpServer(std::string address, Options options);

    /** Stops and joins if still running. */
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /** Register a buffered handler for an exact path. */
    void route(const std::string& path, Handler handler);

    /** Register a streaming handler (SSE) for an exact path. */
    void routeStream(const std::string& path, StreamHandler handler);

    /**
     * Bind, listen and spawn the acceptor + workers. fatal() with an
     * actionable message when the address is malformed or the bind
     * fails (port taken, privileged port, ...).
     */
    void start();

    /** Graceful shutdown; idempotent. Joins every thread. */
    void stop();

    /** Bound TCP port (valid after start()). */
    int port() const { return _port; }

    /** "host:port" actually bound (valid after start()). */
    std::string address() const;

    /** @return whether stop() has begun. */
    bool stopping() const
    {
        return _stopping.load(std::memory_order_relaxed);
    }

    /** Requests fully parsed and routed so far. */
    std::uint64_t requestsServed() const
    {
        return _requests.load(std::memory_order_relaxed);
    }

    /** Connections rejected by the connection limit. */
    std::uint64_t connectionsRejected() const
    {
        return _rejected.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);

    std::string _bindAddress;
    Options _options;

    int _listenFd = -1;
    int _port = 0;
    std::string _host;

    std::atomic<bool> _running{false};
    std::atomic<bool> _stopping{false};
    std::atomic<std::uint64_t> _requests{0};
    std::atomic<std::uint64_t> _rejected{0};

    std::vector<std::pair<std::string, Handler>> _routes;
    std::vector<std::pair<std::string, StreamHandler>> _streamRoutes;

    std::mutex _queueMutex;
    std::condition_variable _queueCv;
    std::deque<int> _pending;
    int _active = 0;  ///< connections popped and being handled

    std::thread _acceptor;
    std::vector<std::thread> _workers;
};

} // namespace net
} // namespace gest

#endif // GEST_NET_HTTP_SERVER_HH
