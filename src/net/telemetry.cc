#include "net/telemetry.hh"

#include <cstdio>
#include <cstdlib>

#include "analysis/recorder.hh"
#include "core/individual.hh"
#include "stats/stats.hh"
#include "util/strutil.hh"

namespace gest {
namespace net {

namespace {

/** Stat name → Prometheus metric name: gest_ prefix, [a-zA-Z0-9_]. */
std::string
prometheusName(const std::string& name)
{
    std::string out = "gest_";
    out.reserve(out.size() + name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string
prometheusDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Escape a HELP text: Prometheus wants \\ and \n escaped. */
std::string
helpEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

void
appendHeader(std::string& out, const std::string& metric,
             const std::string& desc, const char* type)
{
    if (!desc.empty())
        out += "# HELP " + metric + " " + helpEscape(desc) + "\n";
    out += "# TYPE " + metric + " " + type + "\n";
}

} // namespace

std::string
renderPrometheusMetrics()
{
    stats::StatsRegistry& registry = stats::StatsRegistry::instance();
    std::string out;
    out.reserve(4096);

    for (const stats::Counter* c : registry.counterList()) {
        const std::string metric = prometheusName(c->name()) + "_total";
        appendHeader(out, metric, c->desc(), "counter");
        out += metric + " " + std::to_string(c->value()) + "\n";
    }
    for (const stats::Gauge* g : registry.gaugeList()) {
        const std::string metric = prometheusName(g->name());
        appendHeader(out, metric, g->desc(), "gauge");
        out += metric + " " + prometheusDouble(g->value()) + "\n";
    }
    for (const stats::Histogram* h : registry.histogramList()) {
        const std::string metric = prometheusName(h->name());
        appendHeader(out, metric, h->desc(), "histogram");
        // Cumulative le buckets; the underflow bucket folds into the
        // first edge, the overflow bucket only into +Inf.
        std::uint64_t cumulative = h->underflow();
        for (std::size_t i = 0; i < h->numBuckets(); ++i) {
            cumulative += h->bucketCount(i);
            out += metric + "_bucket{le=\"" +
                   prometheusDouble(h->bucketLo(i + 1)) + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        out += metric + "_bucket{le=\"+Inf\"} " +
               std::to_string(h->count()) + "\n";
        out += metric + "_sum " + prometheusDouble(h->sum()) + "\n";
        out += metric + "_count " + std::to_string(h->count()) + "\n";
        // Quantile gauges from the shared stats::Histogram::quantile
        // implementation (native histograms carry no quantiles).
        const char* qs[] = {"0.5", "0.95", "0.99"};
        const double qv[] = {0.50, 0.95, 0.99};
        appendHeader(out, metric + "_quantile", "", "gauge");
        for (int i = 0; i < 3; ++i) {
            out += metric + "_quantile{quantile=\"" + qs[i] + "\"} " +
                   prometheusDouble(h->quantile(qv[i])) + "\n";
        }
    }
    return out;
}

GenerationEventBuffer::GenerationEventBuffer(std::size_t capacity)
    : _slots(capacity == 0 ? 1 : capacity),
      _keys(capacity == 0 ? 1 : capacity)
{
    for (std::atomic<const std::string*>& slot : _slots)
        slot.store(nullptr, std::memory_order_relaxed);
    for (std::atomic<long long>& key : _keys)
        key.store(-1, std::memory_order_relaxed);
}

GenerationEventBuffer::~GenerationEventBuffer()
{
    const std::size_t n = _size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i)
        delete _slots[i].load(std::memory_order_relaxed);
}

void
GenerationEventBuffer::publish(std::string payload, long long key)
{
    const std::size_t n = _size.load(std::memory_order_relaxed);
    if (n >= _slots.size()) {
        _dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    // Slot and key first, then size with release: a reader that
    // acquires the new size is guaranteed to see the fully constructed
    // string and its resume key.
    _slots[n].store(new std::string(std::move(payload)),
                    std::memory_order_relaxed);
    _keys[n].store(key, std::memory_order_relaxed);
    _size.store(n + 1, std::memory_order_release);
}

TelemetryService::TelemetryService(const isa::InstructionLibrary& lib,
                                   int total_generations)
    : _lib(lib), _totalGenerations(total_generations),
      _startUs(stats::nowUs()),
      // Capacity for the whole run plus slack for stagnation overruns
      // and tests that step past the budget.
      _events(static_cast<std::size_t>(
                  total_generations > 0 ? total_generations : 1) +
              64)
{
    analysis::StatusSnapshot empty;
    empty.generation = -1;
    empty.totalGenerations = total_generations;
    // -1 marks "analytics off — not computed" so dashboards render
    // n/a instead of a misleading 0; the analytics recorder overwrites
    // the whole payload with real values via setStatusJson.
    empty.geneEntropyBits = -1.0;
    empty.pairwiseDiversity = -1.0;
    _statusJson = analysis::formatStatusJson(empty);
    _championJson = "{\n  \"state\": \"no champion yet\"\n}\n";
    _coverageJson = "{\n  \"state\": \"coverage not recorded\"\n}\n";
}

void
TelemetryService::onGenerationEvaluated(const core::Population& pop,
                                        const core::GenerationRecord& rec)
{
    _totalMeasured += rec.cacheMisses;
    _totalCacheHits += rec.cacheHits;

    // History row: same quantities as a history.csv line, as JSON.
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"generation\": %d, \"best_fitness\": %.17g, "
        "\"average_fitness\": %.17g, \"best_id\": %llu, "
        "\"diversity\": %.6f, \"cache_hits\": %llu, "
        "\"cache_misses\": %llu, \"evaluation_ms\": %.3f",
        rec.generation, rec.bestFitness, rec.averageFitness,
        static_cast<unsigned long long>(rec.bestId), rec.diversity,
        static_cast<unsigned long long>(rec.cacheHits),
        static_cast<unsigned long long>(rec.cacheMisses),
        rec.evaluationMs);
    std::string row = buf;
    // The coverage ledger's observer runs before this one, so a tick
    // for the same generation extends the row; without the ledger the
    // schema is unchanged.
    if (_coverage.generation == rec.generation) {
        std::snprintf(
            buf, sizeof(buf),
            ", \"coverage_cells_seen\": %llu, "
            "\"coverage_cells_total\": %llu, "
            "\"coverage_cells_new\": %llu, "
            "\"coverage_saturation_pct\": %.6f, "
            "\"coverage_novelty_rate\": %.6f",
            static_cast<unsigned long long>(_coverage.cellsSeen),
            static_cast<unsigned long long>(_coverage.cellsTotal),
            static_cast<unsigned long long>(_coverage.newCells),
            _coverage.saturationPct, _coverage.noveltyRate);
        row += buf;
    }
    row += "}";

    // SSE frame: replayable from index 0, id = generation.
    std::string frame = "event: generation\nid: ";
    frame += std::to_string(rec.generation);
    frame += "\ndata: ";
    frame += row;
    frame += "\n\n";

    {
        std::lock_guard<std::mutex> lock(_mutex);
        const bool improved = !_haveChampion ||
                              rec.bestFitness > _bestFitness;
        if (improved && pop.bestIndex() >= 0) {
            const core::Individual& best = pop.best();
            _haveChampion = true;
            _bestFitness = best.fitness;
            std::string json = "{\n  \"generation\": " +
                               std::to_string(rec.generation) +
                               ",\n  \"id\": " + std::to_string(best.id);
            char fit[64];
            std::snprintf(fit, sizeof(fit), "%.17g", best.fitness);
            json += ",\n  \"fitness\": ";
            json += fit;
            json += ",\n  \"measurements\": [";
            for (std::size_t i = 0; i < best.measurements.size(); ++i) {
                char m[64];
                std::snprintf(m, sizeof(m), "%.17g",
                              best.measurements[i]);
                json += i == 0 ? "" : ", ";
                json += m;
            }
            json += "],\n  \"code\": [";
            const std::vector<std::string> lines =
                core::renderLines(_lib, best);
            for (std::size_t i = 0; i < lines.size(); ++i) {
                json += i == 0 ? "\n    \"" : ",\n    \"";
                json += jsonEscape(lines[i]);
                json += "\"";
            }
            json += lines.empty() ? "]\n}\n" : "\n  ]\n}\n";
            _championJson = std::move(json);
        }
        _historyRows.emplace_back(row);
        if (!_externalStatus)
            _statusJson = composeStatus(rec);
    }

    // Publish the SSE event last so a client woken by it can already
    // read the matching snapshots.
    _events.publish(std::move(frame), rec.generation);
}

void
TelemetryService::noteAlert(const analysis::Alert& alert)
{
    const std::string row = analysis::formatAlertJson(alert);
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _alertRows.push_back(row);
    }
    // No `id:` line — see the publish() contract: alert frames must
    // not advance a client's Last-Event-ID, and keyless events are
    // redelivered on resume.
    _events.publish("event: alert\ndata: " + row + "\n\n");
}

std::string
TelemetryService::alertsJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::string out = "[";
    for (std::size_t i = 0; i < _alertRows.size(); ++i) {
        out += i == 0 ? "\n  " : ",\n  ";
        out += _alertRows[i];
    }
    out += _alertRows.empty() ? "]\n" : "\n]\n";
    return out;
}

std::string
TelemetryService::composeStatus(const core::GenerationRecord& rec) const
{
    const double elapsed_s = (stats::nowUs() - _startUs) / 1e6;
    const int done = rec.generation + 1;
    const std::uint64_t resolved = _totalMeasured + _totalCacheHits;

    analysis::StatusSnapshot snapshot;
    snapshot.running = true;
    snapshot.generation = rec.generation;
    snapshot.totalGenerations = _totalGenerations;
    snapshot.bestFitness = rec.bestFitness;
    snapshot.averageFitness = rec.averageFitness;
    snapshot.diversity = rec.diversity;
    snapshot.evaluations = _totalMeasured;
    snapshot.cacheHitRate =
        resolved > 0 ? static_cast<double>(_totalCacheHits) /
                           static_cast<double>(resolved)
                     : 0.0;
    snapshot.evalsPerSec =
        elapsed_s > 0.0 ? static_cast<double>(_totalMeasured) / elapsed_s
                        : 0.0;
    snapshot.elapsedSeconds = elapsed_s;
    snapshot.etaSeconds =
        _totalGenerations > done && done > 0
            ? elapsed_s / static_cast<double>(done) *
                  static_cast<double>(_totalGenerations - done)
            : 0.0;
    // This path only runs when no analytics recorder owns the status:
    // entropy/diversity are not computed, and -1 (not 0) tells
    // dashboards to render n/a.
    snapshot.geneEntropyBits = -1.0;
    snapshot.pairwiseDiversity = -1.0;
    analysis::fillSteadyCounters(snapshot);
    return analysis::formatStatusJson(snapshot);
}

void
TelemetryService::noteCoverage(const CoverageTick& tick,
                               std::string coverage_json)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _coverage = tick;
    _coverageJson = std::move(coverage_json);
}

std::string
TelemetryService::coverageJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _coverageJson;
}

void
TelemetryService::setStatusJson(std::string payload)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _externalStatus = true;
    _statusJson = std::move(payload);
}

void
TelemetryService::noteRunCompleted()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        // Flip the self-composed status to "completed"; an external
        // (recorder-fed) status already says so via Recorder::finish().
        if (!_externalStatus) {
            const std::string needle = "\"state\": \"running\"";
            const std::size_t pos = _statusJson.find(needle);
            if (pos != std::string::npos)
                _statusJson.replace(pos, needle.size(),
                                    "\"state\": \"completed\"");
        }
    }
    _completed.store(true, std::memory_order_release);
}

std::string
TelemetryService::statusJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _statusJson;
}

std::string
TelemetryService::championJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _championJson;
}

std::string
TelemetryService::historyJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::string out = "[";
    for (std::size_t i = 0; i < _historyRows.size(); ++i) {
        out += i == 0 ? "\n  " : ",\n  ";
        out += _historyRows[i];
    }
    out += _historyRows.empty() ? "]\n" : "\n]\n";
    return out;
}

std::size_t
TelemetryService::generationsSeen() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _historyRows.size();
}

TelemetryServer::TelemetryServer(std::string listen_address,
                                 const isa::InstructionLibrary& lib,
                                 int total_generations,
                                 HttpServer::Options options)
    : _service(lib, total_generations),
      _http(std::move(listen_address), options)
{
    _http.route("/metrics", [](const HttpRequest&) {
        // Sampled, not maintained: refresh uptime/RSS at scrape time.
        stats::updateProcessGauges();
        HttpResponse res;
        res.contentType = "text/plain; version=0.0.4; charset=utf-8";
        res.body = renderPrometheusMetrics();
        return res;
    });
    _http.route("/status", [this](const HttpRequest&) {
        HttpResponse res;
        res.contentType = "application/json";
        res.body = _service.statusJson();
        return res;
    });
    _http.route("/history", [this](const HttpRequest&) {
        HttpResponse res;
        res.contentType = "application/json";
        res.body = _service.historyJson();
        return res;
    });
    _http.route("/champion", [this](const HttpRequest&) {
        HttpResponse res;
        res.contentType = "application/json";
        res.body = _service.championJson();
        return res;
    });
    _http.route("/coverage", [this](const HttpRequest&) {
        HttpResponse res;
        res.contentType = "application/json";
        res.body = _service.coverageJson();
        return res;
    });
    _http.route("/alerts", [this](const HttpRequest&) {
        HttpResponse res;
        res.contentType = "application/json";
        res.body = _service.alertsJson();
        return res;
    });
    _http.route("/healthz", [this](const HttpRequest&) {
        HttpResponse res;
        res.contentType = "application/json";
        res.body = std::string("{\"status\": \"ok\", \"state\": \"") +
                   (_service.completed() ? "completed" : "running") +
                   "\"}\n";
        return res;
    });
    _http.route("/", [](const HttpRequest&) {
        HttpResponse res;
        res.contentType = "text/plain; charset=utf-8";
        res.body = "gest live telemetry\n"
                   "  /metrics   Prometheus text exposition\n"
                   "  /status    status.json heartbeat\n"
                   "  /history   per-generation history (JSON)\n"
                   "  /champion  current best individual (JSON)\n"
                   "  /coverage  search-space coverage ledger (JSON)\n"
                   "  /alerts    GA health-watchdog alerts (JSON)\n"
                   "  /events    SSE, one event per generation\n"
                   "  /healthz   liveness probe\n";
        return res;
    });
    _http.routeStream("/events", [this](const HttpRequest& req,
                                        StreamWriter& writer) {
        // Standard SSE resume: a reconnecting client sends the id of
        // the last event it saw and is replayed only what it missed.
        // Keyless events (alerts) are always replayed — at-least-once
        // beats silently losing an alert raised mid-reconnect.
        long long last_seen = -1;
        const std::string last_header = req.header("last-event-id");
        if (!last_header.empty()) {
            char* end = nullptr;
            const long long parsed =
                std::strtoll(last_header.c_str(), &end, 10);
            if (end != last_header.c_str())
                last_seen = parsed;
        }
        if (!writer.write("retry: 1000\n\n"))
            return;
        std::size_t sent = 0;
        while (writer.ok()) {
            const GenerationEventBuffer& events = _service.events();
            const std::size_t available = events.size();
            while (sent < available) {
                const long long key = events.keyAt(sent);
                if (key >= 0 && key <= last_seen) {
                    ++sent;
                    continue;
                }
                if (!writer.write(*events.at(sent)))
                    return;
                ++sent;
            }
            if (_service.completed() &&
                sent == _service.events().size()) {
                writer.write(
                    "event: end\ndata: {\"state\": \"completed\"}\n\n");
                return;
            }
            writer.waitBriefly(25);
        }
    });
}

void
TelemetryServer::start()
{
    _http.start();
}

void
TelemetryServer::stop()
{
    _http.stop();
}

core::Engine::GenerationCallback
TelemetryServer::observer()
{
    return [this](const core::Population& pop,
                  const core::GenerationRecord& record) {
        _service.onGenerationEvaluated(pop, record);
    };
}

} // namespace net
} // namespace gest
