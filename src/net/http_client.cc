#include "net/http_client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>

namespace gest {
namespace net {

namespace {

/** strtol without the fatal() of util::parseInt: clients report. */
bool
tryParseInt(const std::string& s, int& out)
{
    if (s.empty())
        return false;
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = static_cast<int>(v);
    return true;
}

struct ParsedUrl
{
    std::string host;
    int port = 0;
    std::string path = "/";
};

bool
parseUrl(const std::string& url, ParsedUrl& out, std::string& error)
{
    std::string rest = url;
    const std::string scheme = "http://";
    if (rest.rfind(scheme, 0) == 0)
        rest = rest.substr(scheme.size());
    else if (rest.find("://") != std::string::npos) {
        error = "unsupported scheme in '" + url + "' (http only)";
        return false;
    }

    const std::size_t slash = rest.find('/');
    std::string hostport =
        slash == std::string::npos ? rest : rest.substr(0, slash);
    if (slash != std::string::npos)
        out.path = rest.substr(slash);

    const std::size_t colon = hostport.rfind(':');
    if (colon == std::string::npos) {
        error = "no port in '" + url + "' (expected host:port[/path])";
        return false;
    }
    out.host = hostport.substr(0, colon);
    if (out.host == "localhost")
        out.host = "127.0.0.1";
    int port = 0;
    if (!tryParseInt(hostport.substr(colon + 1), port) || port <= 0 ||
        port > 65535) {
        error = "bad port in '" + url + "'";
        return false;
    }
    out.port = port;
    return true;
}

bool
sendAll(int fd, const char* data, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

HttpResult
httpGet(const std::string& url, int timeout_ms)
{
    HttpResult result;
    ParsedUrl parsed;
    if (!parseUrl(url, parsed, result.error))
        return result;

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(parsed.port));
    if (::inet_pton(AF_INET, parsed.host.c_str(), &addr.sin_addr) != 1) {
        result.error = "bad host '" + parsed.host +
                       "' (IPv4 literal or localhost only)";
        return result;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        result.error = std::string("socket: ") + std::strerror(errno);
        return result;
    }

    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        result.error = "connect to " + parsed.host + ":" +
                       std::to_string(parsed.port) + ": " +
                       std::strerror(errno);
        ::close(fd);
        return result;
    }

    const std::string request = "GET " + parsed.path +
                                " HTTP/1.1\r\nHost: " + parsed.host +
                                "\r\nConnection: close\r\n\r\n";
    if (!sendAll(fd, request.data(), request.size())) {
        result.error = std::string("send: ") + std::strerror(errno);
        ::close(fd);
        return result;
    }

    // The server always closes after one response, so read to EOF.
    std::string raw;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            result.error = std::string("recv: ") + std::strerror(errno);
            ::close(fd);
            return result;
        }
        if (n == 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
        if (raw.size() > (64u << 20)) {
            result.error = "response too large";
            ::close(fd);
            return result;
        }
    }
    ::close(fd);

    // "HTTP/1.1 200 OK\r\n...headers...\r\n\r\nbody"
    if (raw.rfind("HTTP/1.", 0) != 0) {
        result.error = "malformed response (no status line)";
        return result;
    }
    const std::size_t sp = raw.find(' ');
    if (sp == std::string::npos ||
        !tryParseInt(raw.substr(sp + 1, 3), result.status)) {
        result.error = "malformed status line";
        return result;
    }
    const std::size_t headerEnd = raw.find("\r\n\r\n");
    result.body =
        headerEnd == std::string::npos ? "" : raw.substr(headerEnd + 4);
    result.ok = true;
    return result;
}

} // namespace net
} // namespace gest
