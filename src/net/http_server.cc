#include "net/http_server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace net {

namespace {

const char*
reasonPhrase(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 431: return "Request Header Fields Too Large";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

/** send() the whole buffer; EINTR-safe; never raises SIGPIPE. */
bool
sendAll(int fd, const char* data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Serialize and send a buffered response. @p head_only omits the body. */
bool
sendResponse(int fd, const HttpResponse& response, bool head_only)
{
    std::string head = "HTTP/1.1 " + std::to_string(response.status) +
                       " " + reasonPhrase(response.status) + "\r\n";
    head += "Content-Type: " + response.contentType + "\r\n";
    head += "Content-Length: " + std::to_string(response.body.size()) +
            "\r\n";
    head += "Connection: close\r\n\r\n";
    if (!sendAll(fd, head.data(), head.size()))
        return false;
    if (head_only)
        return true;
    return sendAll(fd, response.body.data(), response.body.size());
}

void
sendError(int fd, int status, const std::string& message)
{
    HttpResponse response;
    response.status = status;
    response.body = message + "\n";
    sendResponse(fd, response, /*head_only=*/false);
}

} // namespace

std::string
HttpRequest::header(const std::string& name) const
{
    for (const auto& [key, value] : headers) {
        if (key == name)
            return value;
    }
    return "";
}

bool
StreamWriter::write(const std::string& data)
{
    if (!ok())
        return false;
    if (!sendAll(_fd, data.data(), data.size())) {
        _broken = true;
        return false;
    }
    return true;
}

bool
StreamWriter::ok() const
{
    return !_broken && !_stopping.load(std::memory_order_relaxed);
}

void
StreamWriter::waitBriefly(int ms) const
{
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(std::max(ms, 1), 100)));
}

HttpServer::HttpServer(std::string address)
    : HttpServer(std::move(address), Options())
{}

HttpServer::HttpServer(std::string address, Options options)
    : _bindAddress(std::move(address)), _options(options)
{
    if (_options.workerThreads < 1)
        _options.workerThreads = 1;
    if (_options.maxConnections < 1)
        _options.maxConnections = 1;
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::route(const std::string& path, Handler handler)
{
    if (_running.load(std::memory_order_relaxed))
        panic("HttpServer routes must be registered before start()");
    _routes.emplace_back(path, std::move(handler));
}

void
HttpServer::routeStream(const std::string& path, StreamHandler handler)
{
    if (_running.load(std::memory_order_relaxed))
        panic("HttpServer routes must be registered before start()");
    _streamRoutes.emplace_back(path, std::move(handler));
}

std::string
HttpServer::address() const
{
    return _host + ":" + std::to_string(_port);
}

void
HttpServer::start()
{
    if (_running.load(std::memory_order_relaxed))
        panic("HttpServer started twice");

    const std::size_t colon = _bindAddress.rfind(':');
    if (colon == std::string::npos)
        fatal("telemetry listen address '", _bindAddress,
              "' is not host:port (e.g. 127.0.0.1:0 for an ephemeral "
              "port)");
    std::string host = _bindAddress.substr(0, colon);
    if (host == "localhost")
        host = "127.0.0.1";
    const std::int64_t port = parseInt(
        _bindAddress.substr(colon + 1), "telemetry listen port");
    if (port < 0 || port > 65535)
        fatal("telemetry listen port ", port, " is out of range 0-65535");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        fatal("telemetry listen host '", host,
              "' is not a dotted IPv4 address or 'localhost'");

    _listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (_listenFd < 0)
        fatal("telemetry server cannot create a socket: ",
              std::strerror(errno));
    const int one = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(_listenFd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
        fatal("telemetry server cannot bind ", _bindAddress, ": ",
              std::strerror(errno),
              " (is the port already taken? use port 0 for an "
              "ephemeral one)");
    if (::listen(_listenFd, _options.maxConnections) != 0)
        fatal("telemetry server cannot listen on ", _bindAddress, ": ",
              std::strerror(errno));

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(_listenFd, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) != 0)
        fatal("telemetry server cannot read its bound address: ",
              std::strerror(errno));
    _port = ntohs(bound.sin_port);
    _host = host;

    // Non-blocking accept under poll(): the acceptor wakes at least
    // every 100 ms to observe _stopping, so stop() never needs close()
    // tricks to interrupt a blocked accept().
    const int flags = ::fcntl(_listenFd, F_GETFL, 0);
    ::fcntl(_listenFd, F_SETFL, flags | O_NONBLOCK);

    _stopping.store(false, std::memory_order_relaxed);
    _running.store(true, std::memory_order_relaxed);
    _acceptor = std::thread([this] { acceptLoop(); });
    _workers.reserve(static_cast<std::size_t>(_options.workerThreads));
    for (int i = 0; i < _options.workerThreads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

void
HttpServer::stop()
{
    if (!_running.load(std::memory_order_relaxed))
        return;
    _stopping.store(true, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(_queueMutex);
        _queueCv.notify_all();
    }
    if (_acceptor.joinable())
        _acceptor.join();
    for (std::thread& worker : _workers) {
        if (worker.joinable())
            worker.join();
    }
    _workers.clear();
    for (int fd : _pending)
        ::close(fd);
    _pending.clear();
    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }
    _running.store(false, std::memory_order_relaxed);
}

void
HttpServer::acceptLoop()
{
    while (!_stopping.load(std::memory_order_relaxed)) {
        pollfd pfd{_listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        const int fd = ::accept4(_listenFd, nullptr, nullptr,
                                 SOCK_CLOEXEC);
        if (fd < 0)
            continue;
        bool over_limit;
        {
            std::lock_guard<std::mutex> lock(_queueMutex);
            over_limit = static_cast<int>(_pending.size()) + _active >=
                         _options.maxConnections;
            if (!over_limit) {
                _pending.push_back(fd);
                _queueCv.notify_one();
            }
        }
        if (over_limit) {
            _rejected.fetch_add(1, std::memory_order_relaxed);
            sendError(fd, 503, "telemetry server connection limit "
                               "reached; retry shortly");
            ::close(fd);
        }
    }
}

void
HttpServer::workerLoop()
{
    for (;;) {
        int fd;
        {
            std::unique_lock<std::mutex> lock(_queueMutex);
            _queueCv.wait(lock, [this] {
                return !_pending.empty() ||
                       _stopping.load(std::memory_order_relaxed);
            });
            if (_pending.empty())
                return;  // stopping with an empty queue
            fd = _pending.front();
            _pending.pop_front();
            ++_active;
        }
        handleConnection(fd);
        ::close(fd);
        {
            std::lock_guard<std::mutex> lock(_queueMutex);
            --_active;
        }
    }
}

void
HttpServer::handleConnection(int fd)
{
    // Bound the request-head read so a silent client cannot park a
    // worker past the timeout.
    timeval timeout{};
    timeout.tv_sec = _options.requestTimeoutMs / 1000;
    timeout.tv_usec = (_options.requestTimeoutMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::string head;
    head.reserve(512);
    char buf[1024];
    while (head.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            if (!head.empty())
                sendError(fd, 408, "timed out reading the request");
            return;
        }
        head.append(buf, static_cast<std::size_t>(n));
        // Checked after the append: the limit must hold even when an
        // oversized head arrives in a single segment.
        if (head.size() > _options.maxRequestBytes) {
            sendError(fd, 431, "request head exceeds " +
                                   std::to_string(
                                       _options.maxRequestBytes) +
                                   " bytes");
            return;
        }
    }

    // Request line: METHOD SP TARGET SP VERSION.
    const std::size_t line_end = head.find("\r\n");
    const std::vector<std::string> parts =
        splitWhitespace(head.substr(0, line_end));
    if (parts.size() != 3 || !startsWith(parts[2], "HTTP/")) {
        sendError(fd, 400, "malformed request line");
        return;
    }
    HttpRequest request;
    request.method = parts[0];
    request.target = parts[1];
    const std::size_t question = request.target.find('?');
    request.path = request.target.substr(0, question);
    if (question != std::string::npos)
        request.query = request.target.substr(question + 1);

    std::size_t cursor = line_end + 2;
    const std::size_t head_end = head.find("\r\n\r\n");
    while (cursor < head_end) {
        const std::size_t eol = head.find("\r\n", cursor);
        const std::string line = head.substr(cursor, eol - cursor);
        cursor = eol + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        request.headers.emplace_back(toLower(line.substr(0, colon)),
                                     trim(line.substr(colon + 1)));
    }

    _requests.fetch_add(1, std::memory_order_relaxed);

    if (request.method != "GET" && request.method != "HEAD") {
        sendError(fd, 405, "only GET and HEAD are supported; the "
                           "telemetry server is read-only");
        return;
    }

    for (const auto& [path, handler] : _routes) {
        if (path == request.path) {
            sendResponse(fd, handler(request),
                         request.method == "HEAD");
            return;
        }
    }
    for (const auto& [path, handler] : _streamRoutes) {
        if (path != request.path)
            continue;
        const std::string stream_head =
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n";
        if (!sendAll(fd, stream_head.data(), stream_head.size()))
            return;
        if (request.method == "HEAD")
            return;
        StreamWriter writer(fd, _stopping);
        handler(request, writer);
        return;
    }
    sendError(fd, 404, "unknown endpoint " + request.path +
                           "; try /metrics, /status, /history, "
                           "/champion, /events or /healthz");
}

} // namespace net
} // namespace gest
