/**
 * @file
 * A minimal blocking HTTP/1.1 GET client, just enough to scrape the
 * embedded telemetry server from `gest top` and the tests. Loopback
 * IPv4 only, no TLS, no redirects, no keep-alive — by design the exact
 * mirror of what HttpServer serves.
 */

#ifndef GEST_NET_HTTP_CLIENT_HH
#define GEST_NET_HTTP_CLIENT_HH

#include <string>

namespace gest {
namespace net {

/** Outcome of one GET. */
struct HttpResult
{
    bool ok = false;        ///< transport worked and a status was parsed
    int status = 0;         ///< HTTP status code (0 on transport error)
    std::string body;       ///< response body (headers stripped)
    std::string error;      ///< human-readable failure when !ok
};

/**
 * Fetch @p url, which may be "http://host:port/path", "host:port/path"
 * or "host:port" (path defaults to "/"). Host must be a dotted IPv4
 * literal or "localhost". Never throws; inspect HttpResult.
 *
 * @param timeout_ms connect/read timeout per socket operation
 */
HttpResult httpGet(const std::string& url, int timeout_ms = 2000);

} // namespace net
} // namespace gest

#endif // GEST_NET_HTTP_CLIENT_HH
