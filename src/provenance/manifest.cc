#include "provenance/manifest.hh"

#include <algorithm>
#include <ctime>
#include <sstream>

#include <sys/utsname.h>

#include "util/fileutil.hh"
#include "util/jsonlite.hh"
#include "util/logging.hh"
#include "util/sha256.hh"
#include "util/strutil.hh"
#include "xml/xml.hh"

// The git revision and build type are baked into this translation unit
// alone (src/CMakeLists.txt), so a new commit dirties one object file,
// not the whole library.
#ifndef GEST_GIT_SHA
#define GEST_GIT_SHA "unknown"
#endif
#ifndef GEST_BUILD_TYPE
#define GEST_BUILD_TYPE "unknown"
#endif

namespace gest {
namespace provenance {

const char* const rngGeneratorId = "xoshiro256** (splitmix64-seeded)";

namespace {

/**
 * Render @p elem into the canonical form canonicalConfigHash() hashes:
 * tag, attributes sorted by name, trimmed text, then children in
 * document order — each field length-delimited so renderings can never
 * collide across structure boundaries.
 */
void
canonicalize(const xml::Element& elem, std::ostringstream& os)
{
    os << "e" << elem.name().size() << ":" << elem.name();

    std::vector<const xml::Attribute*> attrs;
    for (const xml::Attribute& attr : elem.attributes())
        attrs.push_back(&attr);
    std::sort(attrs.begin(), attrs.end(),
              [](const xml::Attribute* a, const xml::Attribute* b) {
                  return a->name < b->name;
              });
    for (const xml::Attribute* attr : attrs)
        os << "a" << attr->name.size() << ":" << attr->name << "="
           << attr->value.size() << ":" << attr->value;

    const std::string text = trim(elem.text());
    if (!text.empty())
        os << "t" << text.size() << ":" << text;

    os << "[";
    for (const std::unique_ptr<xml::Element>& child : elem.children())
        canonicalize(*child, os);
    os << "]";
}

std::string
isoNowUtc()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

std::string
quoted(const std::string& s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
formatDouble(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

} // namespace

std::string
canonicalConfigHash(const std::string& xml_text)
{
    const xml::Document doc =
        xml::parse(xml_text, "configuration (canonical hash)");
    std::ostringstream os;
    canonicalize(doc.root(), os);
    return sha256Hex(os.str());
}

std::string
currentBuildFingerprint()
{
#if defined(__VERSION__)
    const std::string compiler = __VERSION__;
#else
    const std::string compiler = "unknown";
#endif
    return compiler + ", " + GEST_BUILD_TYPE + ", " + GEST_GIT_SHA;
}

std::string
currentGitSha()
{
    return GEST_GIT_SHA;
}

void
fillBuildInfo(Manifest& m)
{
#if defined(__VERSION__)
    m.compiler = __VERSION__;
#else
    m.compiler = "unknown";
#endif
    m.buildType = GEST_BUILD_TYPE;
    m.gitSha = GEST_GIT_SHA;

    struct utsname uts{};
    if (uname(&uts) == 0) {
        m.os = std::string(uts.sysname) + " " + uts.release;
        m.machine = uts.machine;
    }
    m.rngGenerator = rngGeneratorId;
    if (m.created.empty())
        m.created = isoNowUtc();
}

std::string
buildFingerprintOf(const Manifest& m)
{
    return m.compiler + ", " + m.buildType + ", " + m.gitSha;
}

std::string
formatManifest(const Manifest& m)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"gest_manifest_version\": " << m.version << ",\n";
    os << "  \"created\": " << quoted(m.created) << ",\n";

    os << "  \"config\": {\n";
    os << "    \"hash\": " << quoted(m.configHash) << ",\n";
    os << "    \"base_dir\": " << quoted(m.configBaseDir) << ",\n";
    os << "    \"measurement_class\": " << quoted(m.measurementClass)
       << ",\n";
    os << "    \"fitness_class\": " << quoted(m.fitnessClass) << "\n";
    os << "  },\n";

    os << "  \"rng\": {\n";
    if (m.hasSeed)
        os << "    \"seed\": \"" << m.seed << "\",\n";
    os << "    \"generator\": " << quoted(m.rngGenerator) << "\n";
    os << "  },\n";

    os << "  \"ga\": {\n";
    os << "    \"population_size\": " << m.populationSize << ",\n";
    os << "    \"individual_size\": " << m.individualSize << ",\n";
    os << "    \"generations\": " << m.generations << ",\n";
    os << "    \"threads\": " << m.threads << ",\n";
    os << "    \"fitness_cache_size\": " << m.fitnessCacheSize << ",\n";
    os << "    \"elitism\": " << (m.elitism ? "true" : "false") << "\n";
    os << "  },\n";

    os << "  \"build\": {\n";
    os << "    \"compiler\": " << quoted(m.compiler) << ",\n";
    os << "    \"build_type\": " << quoted(m.buildType) << ",\n";
    os << "    \"git_sha\": " << quoted(m.gitSha) << "\n";
    os << "  },\n";

    os << "  \"platform\": {\n";
    os << "    \"os\": " << quoted(m.os) << ",\n";
    os << "    \"machine\": " << quoted(m.machine) << "\n";
    os << "  },\n";

    os << "  \"settings\": {\n";
    os << "    \"steady_state_override\": "
       << (m.steadyStateOverride
               ? (*m.steadyStateOverride ? "true" : "false")
               : "null")
       << ",\n";
    os << "    \"waveform_top_k\": " << m.waveformTopK << ",\n";
    os << "    \"record_stats\": " << (m.recordStats ? "true" : "false")
       << ",\n";
    os << "    \"record_analytics\": "
       << (m.recordAnalytics ? "true" : "false");
    // Only emitted when on: manifests of runs without coverage or
    // attribution stay byte-identical to pre-feature builds (the
    // digests_sealed optional-key convention).
    if (m.recordCoverage)
        os << ",\n    \"record_coverage\": true";
    if (m.recordAttribution)
        os << ",\n    \"record_attribution\": true";
    os << "\n  },\n";

    os << "  \"run\": {\n";
    os << "    \"generations_completed\": " << m.generationsCompleted
       << ",\n";
    os << "    \"evaluations\": " << m.evaluations << ",\n";
    os << "    \"best_fitness\": " << formatDouble(m.bestFitness)
       << ",\n";
    os << "    \"best_id\": " << m.bestId << ",\n";
    os << "    \"digests_sealed\": " << m.digestsSealed << ",\n";
    os << "    \"digest_ms_total\": " << formatDouble(m.digestMsTotal)
       << "\n";
    os << "  },\n";

    os << "  \"artifacts\": [\n";
    for (std::size_t i = 0; i < m.artifacts.size(); ++i) {
        const ArtifactEntry& a = m.artifacts[i];
        os << "    {\"path\": " << quoted(a.path)
           << ", \"sha256\": " << quoted(a.sha256)
           << ", \"bytes\": " << a.bytes
           << ", \"kind\": " << quoted(a.kind) << "}"
           << (i + 1 < m.artifacts.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

bool
loadManifest(const std::string& run_dir, Manifest& out, std::string* error)
{
    out = Manifest();
    const std::string path = run_dir + "/manifest.json";
    std::string text;
    if (!tryReadFile(path, text)) {
        if (error)
            *error = path + " is missing: not a provenance-sealed run "
                            "(recorded by a pre-provenance build, or "
                            "with <output provenance=\"false\"/>)";
        return false;
    }
    json::Value root;
    std::string parse_error;
    if (!json::parse(text, root, &parse_error)) {
        if (error)
            *error = path + " is not valid JSON: " + parse_error;
        return false;
    }
    out.version = static_cast<int>(
        root.numberOr("gest_manifest_version", 0));
    if (out.version != manifestVersion) {
        if (error)
            *error = path + " has schema version " +
                     std::to_string(out.version) +
                     "; this build understands version " +
                     std::to_string(manifestVersion);
        return false;
    }
    out.created = root.stringOr("created", "");

    if (const json::Value* config = root.find("config")) {
        out.configHash = config->stringOr("hash", "");
        out.configBaseDir = config->stringOr("base_dir", "");
        out.measurementClass =
            config->stringOr("measurement_class", "");
        out.fitnessClass = config->stringOr("fitness_class", "");
    }
    if (const json::Value* rng = root.find("rng")) {
        const std::string seed = rng->stringOr("seed", "");
        if (!seed.empty()) {
            out.hasSeed = true;
            out.seed = parseUint64(seed, "manifest seed");
        }
        out.rngGenerator = rng->stringOr("generator", "");
    }
    if (const json::Value* ga = root.find("ga")) {
        out.populationSize =
            static_cast<int>(ga->numberOr("population_size", 0));
        out.individualSize =
            static_cast<int>(ga->numberOr("individual_size", 0));
        out.generations =
            static_cast<int>(ga->numberOr("generations", 0));
        out.threads = static_cast<int>(ga->numberOr("threads", 1));
        out.fitnessCacheSize =
            static_cast<int>(ga->numberOr("fitness_cache_size", 0));
        if (const json::Value* elitism = ga->find("elitism"))
            out.elitism = elitism->boolean;
    }
    if (const json::Value* build = root.find("build")) {
        out.compiler = build->stringOr("compiler", "");
        out.buildType = build->stringOr("build_type", "");
        out.gitSha = build->stringOr("git_sha", "");
    }
    if (const json::Value* platform = root.find("platform")) {
        out.os = platform->stringOr("os", "");
        out.machine = platform->stringOr("machine", "");
    }
    if (const json::Value* settings = root.find("settings")) {
        if (const json::Value* steady =
                settings->find("steady_state_override")) {
            if (steady->type == json::Value::Type::Bool)
                out.steadyStateOverride = steady->boolean;
        }
        out.waveformTopK =
            static_cast<int>(settings->numberOr("waveform_top_k", 0));
        if (const json::Value* stats = settings->find("record_stats"))
            out.recordStats = stats->boolean;
        if (const json::Value* analytics =
                settings->find("record_analytics"))
            out.recordAnalytics = analytics->boolean;
        if (const json::Value* cov = settings->find("record_coverage"))
            out.recordCoverage = cov->boolean;
        if (const json::Value* attr =
                settings->find("record_attribution"))
            out.recordAttribution = attr->boolean;
    }
    if (const json::Value* run = root.find("run")) {
        out.generationsCompleted =
            static_cast<int>(run->numberOr("generations_completed", 0));
        out.evaluations = static_cast<std::uint64_t>(
            run->numberOr("evaluations", 0));
        out.bestFitness = run->numberOr("best_fitness", 0.0);
        out.bestId =
            static_cast<std::uint64_t>(run->numberOr("best_id", 0));
        out.digestsSealed = static_cast<std::uint64_t>(
            run->numberOr("digests_sealed", 0));
        out.digestMsTotal = run->numberOr("digest_ms_total", 0.0);
    }
    if (const json::Value* artifacts = root.find("artifacts")) {
        for (const json::Value& entry : artifacts->array) {
            ArtifactEntry a;
            a.path = entry.stringOr("path", "");
            a.sha256 = entry.stringOr("sha256", "");
            a.bytes = static_cast<std::uint64_t>(
                entry.numberOr("bytes", 0));
            a.kind = entry.stringOr("kind", "");
            if (!a.path.empty())
                out.artifacts.push_back(std::move(a));
        }
    }
    return true;
}

} // namespace provenance
} // namespace gest
