/**
 * @file
 * Per-generation population digests: the replay-verification ground
 * truth behind `gest verify`.
 *
 * After each evaluated generation the provenance layer hashes a
 * canonical serialization of the whole population — every individual's
 * id, lineage, fitness, measurement vector and genome — and appends one
 * row to the run's `digests.csv` ledger (`# gest-digests v1`). A replay
 * of the run from its recorded configuration and seed must reproduce
 * every digest bit-for-bit; the first row that differs pins the first
 * divergent generation, and the recorded population checkpoint of that
 * generation pins the first divergent individual.
 *
 * The canonical text deliberately excludes the generation *number*: a
 * population checkpoint reloaded as the seed of a new run (§III.D)
 * holds the same individuals under a different generation index, and
 * its generation-0 digest must equal the checkpoint's.
 */

#ifndef GEST_PROVENANCE_DIGEST_HH
#define GEST_PROVENANCE_DIGEST_HH

#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/population.hh"

namespace gest {
namespace provenance {

/**
 * digests.csv format version written by this build. The first line of
 * the file is `# gest-digests v<N>`; columns are append-only across
 * versions, like every other ledger in the run directory.
 */
constexpr int digestsCsvVersion = 1;

/**
 * The canonical serialization of one individual that populationDigest()
 * hashes: the `individual` / `measurements` / `code` records of the
 * population file format (core::serializePopulation), with doubles at
 * precision 17 so they round-trip exactly. No generation number.
 */
std::string canonicalIndividualText(const isa::InstructionLibrary& lib,
                                    const core::Individual& ind);

/**
 * SHA-256 (64 hex digits) over the canonical serialization of every
 * individual of @p pop, in population order.
 */
std::string populationDigest(const isa::InstructionLibrary& lib,
                             const core::Population& pop);

/** One parsed digests.csv row. */
struct DigestRow
{
    int generation = 0;
    double bestFitness = 0.0;
    std::string digest;
};

/**
 * Appends one digest row per evaluated generation to
 * `<run_dir>/digests.csv`. Attach via Engine::addGenerationObserver();
 * the ledger only reads const views and never touches the GA RNG, so
 * all other artifacts are bit-identical with the ledger on or off.
 */
class DigestLedger
{
  public:
    /** @param lib must outlive the ledger. */
    DigestLedger(std::string run_dir, const isa::InstructionLibrary& lib);

    /** Digest @p pop and append its row (header on the first call). */
    void append(const core::Population& pop,
                const core::GenerationRecord& record);

    /** An engine observer that forwards to append(). */
    core::Engine::GenerationCallback observer();

    /** Rows appended so far. */
    std::uint64_t rowsSealed() const { return _rows; }

    /** Microseconds spent serializing + hashing, run total. */
    double digestUsTotal() const { return _digestUs; }

    /** The ledger file's path. */
    std::string path() const { return _runDir + "/digests.csv"; }

  private:
    std::string _runDir;
    const isa::InstructionLibrary& _lib;
    bool _started = false;
    std::uint64_t _rows = 0;
    double _digestUs = 0.0;
};

/**
 * Parse `<run_dir>/digests.csv`. @return false — with @p error set —
 * when the file is absent, has no rows, or is malformed.
 */
bool loadDigests(const std::string& run_dir, std::vector<DigestRow>& out,
                 std::string* error);

} // namespace provenance
} // namespace gest

#endif // GEST_PROVENANCE_DIGEST_HH
