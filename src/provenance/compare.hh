/**
 * @file
 * Cross-run comparison behind `gest compare <runA> <runB> [...]`.
 *
 * Deterministic results (fitness trajectory, champion genome, digest
 * ledger) are compared exactly — any difference is a *significant
 * delta*, and two runs of the same configuration and seed must report
 * zero of them. Performance metrics (evals/sec, phase timings, cache
 * and steady-state hit rates) are inherently noisy, so they are
 * reported separately with a permutation-test p-value on the
 * per-generation evaluation times; a perf delta is *flagged* — for CI
 * regression gates — only when it is both statistically significant
 * (p < 0.05) and practically large (>10% relative change).
 */

#ifndef GEST_PROVENANCE_COMPARE_HH
#define GEST_PROVENANCE_COMPARE_HH

#include <string>
#include <vector>

namespace gest {
namespace provenance {

/** One perf metric's baseline/candidate values and verdict. */
struct PerfDelta
{
    std::string metric;
    double baseline = 0.0;
    double candidate = 0.0;
    double relDelta = 0.0;  ///< (candidate - baseline) / baseline
    double pValue = 1.0;    ///< 1.0 when no resampling applies
    bool resampled = false;
    bool flagged = false;   ///< p < 0.05 and |relDelta| > 0.10
};

/** Everything `gest compare` reports for one baseline/candidate pair. */
struct RunComparison
{
    std::string baselineDir;
    std::string candidateDir;

    /** Deterministic mismatches; 0 for two runs of the same seed. */
    int significantDeltas = 0;

    /** One message per deterministic mismatch. */
    std::vector<std::string> deterministic;

    /** First generation whose best fitness differs; -1 if none. */
    int firstFitnessDivergence = -1;
    double maxAbsFitnessDelta = 0.0;

    /** Champion genome diff, "- baseline" / "+ candidate" lines. */
    std::vector<std::string> genomeDiff;

    /** True when both runs carry a digests.csv ledger. */
    bool digestsCompared = false;
    int firstDigestDivergence = -1;

    std::vector<PerfDelta> perf;
    int flaggedPerf = 0;

    /** Informational lines (missing artifacts, config notes). */
    std::vector<std::string> notes;
};

/**
 * Compare @p candidate_dir against @p baseline_dir. fatal() when
 * either directory holds no readable run (no history.csv).
 */
RunComparison compareRuns(const std::string& baseline_dir,
                          const std::string& candidate_dir);

/** Render one comparison as the text `gest compare` prints. */
std::string formatComparison(const RunComparison& cmp);

/** Render comparisons as one JSON object (`gest compare --json`). */
std::string
formatComparisonsJson(const std::vector<RunComparison>& comparisons);

} // namespace provenance
} // namespace gest

#endif // GEST_PROVENANCE_COMPARE_HH
