#include "provenance/verify.hh"

#include <memory>
#include <sstream>

#include "config/config.hh"
#include "core/population.hh"
#include "fitness/fitness.hh"
#include "measure/measurement.hh"
#include "native/native_measurement.hh"
#include "provenance/digest.hh"
#include "provenance/manifest.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/sha256.hh"
#include "util/strutil.hh"

namespace gest {
namespace provenance {

namespace {

std::string
formatDouble17(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/**
 * Pin the first divergent individual of generation @p gen by comparing
 * the recorded population checkpoint against the replayed population,
 * field by field, in population order.
 */
std::string
bisectGeneration(const std::string& run_dir,
                 const isa::InstructionLibrary& lib,
                 const core::Population& replayed, int gen,
                 std::uint64_t& divergent_id)
{
    const std::string pop_path =
        run_dir + "/population_" + std::to_string(gen) + ".pop";
    std::string text;
    if (!tryReadFile(pop_path, text))
        return "(no " + pop_path + " checkpoint; cannot bisect to an "
               "individual)";
    core::Population recorded;
    try {
        recorded = core::deserializePopulation(lib, text);
    } catch (const FatalError& err) {
        return std::string("(checkpoint unreadable: ") + err.what() +
               ")";
    }

    if (recorded.individuals.size() != replayed.individuals.size())
        return "population size recorded " +
               std::to_string(recorded.individuals.size()) +
               " vs replayed " +
               std::to_string(replayed.individuals.size());

    for (std::size_t i = 0; i < recorded.individuals.size(); ++i) {
        const core::Individual& rec = recorded.individuals[i];
        const core::Individual& rep = replayed.individuals[i];
        const std::string who = "individual id " +
                                std::to_string(rec.id) + " (index " +
                                std::to_string(i) + ")";
        divergent_id = rec.id;
        if (rec.id != rep.id)
            return "individual at index " + std::to_string(i) +
                   ": id recorded " + std::to_string(rec.id) +
                   " vs replayed " + std::to_string(rep.id);
        if (canonicalIndividualText(lib, rec) ==
            canonicalIndividualText(lib, rep))
            continue;
        if (rec.code.size() != rep.code.size())
            return who + ": genome length recorded " +
                   std::to_string(rec.code.size()) + " vs replayed " +
                   std::to_string(rep.code.size());
        for (std::size_t g = 0; g < rec.code.size(); ++g) {
            if (rec.code[g].defIndex != rep.code[g].defIndex ||
                rec.code[g].operandChoice != rep.code[g].operandChoice)
                return who + ": genome differs at gene " +
                       std::to_string(g) + " (recorded " +
                       lib.instruction(rec.code[g].defIndex).name +
                       ", replayed " +
                       lib.instruction(rep.code[g].defIndex).name + ")";
        }
        const std::size_t n_meas = std::min(rec.measurements.size(),
                                            rep.measurements.size());
        if (rec.measurements.size() != rep.measurements.size())
            return who + ": measurement count recorded " +
                   std::to_string(rec.measurements.size()) +
                   " vs replayed " +
                   std::to_string(rep.measurements.size());
        for (std::size_t v = 0; v < n_meas; ++v) {
            if (rec.measurements[v] != rep.measurements[v])
                return who + ": measurement " + std::to_string(v) +
                       " recorded " + formatDouble17(rec.measurements[v]) +
                       " vs replayed " +
                       formatDouble17(rep.measurements[v]);
        }
        if (rec.fitness != rep.fitness)
            return who + ": fitness recorded " +
                   formatDouble17(rec.fitness) + " vs replayed " +
                   formatDouble17(rep.fitness);
        if (rec.evaluated != rep.evaluated)
            return who + ": evaluated flag recorded " +
                   std::to_string(rec.evaluated) + " vs replayed " +
                   std::to_string(rep.evaluated);
        return who + ": canonical serialization differs";
    }
    divergent_id = 0;
    return "digests differ but every individual matches the "
           "checkpoint; the checkpoint itself may predate the ledger "
           "row";
}

/** Per-run replay bookkeeping shared with the engine observer. */
struct ReplayState
{
    const std::vector<DigestRow>* rows = nullptr;
    const isa::InstructionLibrary* lib = nullptr;
    std::string runDir;
    std::size_t next = 0;
    bool diverged = false;
    int firstGen = -1;
    std::uint64_t firstId = 0;
    std::string message;
};

} // namespace

VerifyResult
verifyRun(const std::string& run_dir, const VerifyOptions& options)
{
    VerifyResult result;
    auto problem = [&](std::string msg) {
        result.ok = false;
        result.problems.push_back(std::move(msg));
    };

    Manifest manifest;
    std::string error;
    if (!loadManifest(run_dir, manifest, &error)) {
        problem(error);
        return result;
    }
    result.notes.push_back(
        "manifest: config " + manifest.configHash.substr(0, 12) +
        "…, seed " +
        (manifest.hasSeed ? std::to_string(manifest.seed)
                          : std::string("(none)")) +
        ", " + std::to_string(manifest.generationsCompleted) +
        " generations, " + std::to_string(manifest.artifacts.size()) +
        " artifacts, build " + buildFingerprintOf(manifest));

    // Checksum phase: name the first missing or modified artifact.
    for (const ArtifactEntry& artifact : manifest.artifacts) {
        const std::string full = run_dir + "/" + artifact.path;
        std::string hash;
        if (!sha256File(full, hash)) {
            if (result.firstBadArtifact.empty())
                result.firstBadArtifact = artifact.path;
            problem("artifact " + artifact.path + " (kind " +
                    artifact.kind + ") is missing or unreadable");
            continue;
        }
        if (hash != artifact.sha256) {
            if (result.firstBadArtifact.empty())
                result.firstBadArtifact = artifact.path;
            problem("artifact " + artifact.path + " (kind " +
                    artifact.kind + ") checksum mismatch: sealed " +
                    artifact.sha256.substr(0, 12) + "…, found " +
                    hash.substr(0, 12) + "…");
            continue;
        }
        ++result.artifactsVerified;
    }
    result.notes.push_back(
        "checksums: " + std::to_string(result.artifactsVerified) + "/" +
        std::to_string(manifest.artifacts.size()) +
        " artifacts verified");
    if (options.quick) {
        result.notes.push_back("quick mode: replay skipped");
        return result;
    }
    if (!result.ok) {
        result.notes.push_back(
            "replay skipped: artifact checksums already fail");
        return result;
    }

    // Replay phase.
    if (!manifest.hasSeed) {
        problem("manifest records no RNG seed; the run cannot be "
                "replayed (re-record with seed=\"...\" in <ga>)");
        return result;
    }
    if (!manifest.rngGenerator.empty() &&
        manifest.rngGenerator != rngGeneratorId) {
        problem("RNG generator mismatch: the run used '" +
                manifest.rngGenerator + "', this build uses '" +
                rngGeneratorId + "'; a replay cannot reproduce it");
        return result;
    }
    if (buildFingerprintOf(manifest) != currentBuildFingerprint()) {
        result.notes.push_back(
            "note: sealed by a different build (" +
            buildFingerprintOf(manifest) + " vs " +
            currentBuildFingerprint() +
            "); a divergence below may stem from code changes, not "
            "tampering");
    }

    std::vector<DigestRow> rows;
    if (!loadDigests(run_dir, rows, &error)) {
        problem(error);
        return result;
    }

    std::string config_text;
    if (!tryReadFile(run_dir + "/run_configuration.xml", config_text)) {
        problem("run_configuration.xml is missing from " + run_dir +
                "; the run cannot be replayed");
        return result;
    }
    const std::string recomputed_hash = canonicalConfigHash(config_text);
    if (recomputed_hash != manifest.configHash) {
        result.notes.push_back(
            "note: config drift — run_configuration.xml hashes " +
            recomputed_hash.substr(0, 12) +
            "… but the manifest seals " +
            manifest.configHash.substr(0, 12) +
            "…; manifest.json or the configuration was edited");
    }

    const std::string base_dir =
        manifest.configBaseDir.empty() ? "." : manifest.configBaseDir;
    config::RunConfig cfg;
    try {
        cfg = config::parseConfig(config_text, base_dir);
    } catch (const FatalError& err) {
        // External references (template file, measurement config,
        // seed population) may no longer resolve from the original
        // base directory; fall back to the embedded information.
        try {
            config::ParseOptions no_files;
            no_files.loadReferencedFiles = false;
            cfg = config::parseConfig(config_text, base_dir, no_files);
            result.notes.push_back(
                std::string("note: external file references did not "
                            "resolve from ") +
                base_dir + " (" + err.what() +
                "); replaying with embedded configuration only");
        } catch (const FatalError& err2) {
            problem(std::string("recorded configuration no longer "
                                "parses: ") +
                    err2.what());
            return result;
        }
    }

    // The manifest's seed is authoritative: verify replays what the
    // manifest claims, so editing the sealed seed is itself a
    // detectable divergence (at generation 0).
    cfg.ga.seed = manifest.seed;
    if (manifest.steadyStateOverride)
        cfg.steadyStateOverride = manifest.steadyStateOverride;

    config::registerBuiltins();
    native::registerNativeMeasurements();

    std::unique_ptr<measure::Measurement> measurement;
    std::unique_ptr<fitness::Fitness> fit;
    try {
        measurement = measure::MeasurementRegistry::instance().create(
            cfg.measurementClass, cfg.library);
        measurement->init(cfg.measurementConfig);
        if (cfg.steadyStateOverride)
            measurement->setSteadyState(*cfg.steadyStateOverride);
        fit = fitness::FitnessRegistry::instance().create(
            cfg.fitnessClass);
        fit->init(cfg.fitnessConfig);
    } catch (const FatalError& err) {
        problem(std::string("cannot rebuild the run's measurement/"
                            "fitness: ") +
                err.what());
        return result;
    }

    core::Engine engine(cfg.ga, cfg.library, *measurement, *fit);
    if (!cfg.seedPopulationPath.empty()) {
        try {
            engine.setSeedPopulation(core::loadPopulation(
                cfg.library, cfg.seedPopulationPath));
        } catch (const FatalError& err) {
            problem("seed population " + cfg.seedPopulationPath +
                    " no longer loads (" + err.what() +
                    "); the replay cannot reconstruct generation 0");
            return result;
        }
    }

    ReplayState state;
    state.rows = &rows;
    state.lib = &cfg.library;
    state.runDir = run_dir;
    engine.addGenerationObserver(
        [&state](const core::Population& pop,
                 const core::GenerationRecord& record) {
            if (state.diverged)
                return;
            if (state.next >= state.rows->size()) {
                state.diverged = true;
                state.firstGen = record.generation;
                state.message =
                    "replay produced generation " +
                    std::to_string(record.generation) +
                    " but the ledger records only " +
                    std::to_string(state.rows->size()) + " generations";
                return;
            }
            const DigestRow& expected = (*state.rows)[state.next];
            const std::string digest =
                populationDigest(*state.lib, pop);
            if (digest == expected.digest) {
                ++state.next;
                return;
            }
            state.diverged = true;
            state.firstGen = record.generation;
            state.message = bisectGeneration(state.runDir, *state.lib,
                                             pop, record.generation,
                                             state.firstId);
        });

    engine.initialize();
    while (!state.diverged && engine.step()) {
    }

    result.generationsVerified = state.next;
    if (state.diverged) {
        result.firstDivergentGeneration = state.firstGen;
        result.firstDivergentIndividual = state.firstId;
        problem("first divergent generation " +
                std::to_string(state.firstGen) + ": " + state.message);
        if (manifest.threads > 1) {
            result.notes.push_back(
                "hint: the run evaluated with threads=" +
                std::to_string(manifest.threads) +
                "; measurements that are not pure functions of the "
                "code (native counters, noisy instruments) make "
                "multi-threaded runs nondeterministic — re-record "
                "with threads=1 or a simulated measurement");
        }
        return result;
    }
    if (state.next < rows.size()) {
        result.firstDivergentGeneration = static_cast<int>(state.next);
        problem("replay ended after " + std::to_string(state.next) +
                " generations but the ledger records " +
                std::to_string(rows.size()) +
                " — first missing generation " +
                std::to_string(rows[state.next].generation));
        return result;
    }
    result.notes.push_back(
        "replay: " + std::to_string(state.next) +
        " generations reproduced bit-identically");
    return result;
}

std::string
formatVerify(const std::string& run_dir, const VerifyResult& result)
{
    std::string out = "verify: " + run_dir + "\n";
    for (const std::string& note : result.notes)
        out += "  " + note + "\n";
    for (const std::string& prob : result.problems)
        out += "FAIL: " + prob + "\n";
    out += result.ok ? "OK: run verified\n"
                     : "verification FAILED\n";
    return out;
}

} // namespace provenance
} // namespace gest
