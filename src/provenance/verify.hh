/**
 * @file
 * Replay verification behind `gest verify <run_dir>`.
 *
 * Verification has two phases. The checksum phase recomputes the
 * SHA-256 of every artifact the manifest seals and names the first one
 * that is missing or modified. The replay phase re-runs the GA from the
 * recorded configuration and the manifest's seed — writing nothing into
 * the run directory — and compares the per-generation population
 * digests against the `digests.csv` ledger; the first row that differs
 * is bisected to the first divergent individual using that generation's
 * recorded population checkpoint. Failures come with actionable
 * diagnostics: missing seed, configuration drift, a different sealing
 * build, thread-count nondeterminism with non-pure measurements.
 */

#ifndef GEST_PROVENANCE_VERIFY_HH
#define GEST_PROVENANCE_VERIFY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gest {
namespace provenance {

struct VerifyOptions
{
    /** Checksum phase only: skip the GA replay. */
    bool quick = false;
};

/** Everything `gest verify` reports, in analyzable form. */
struct VerifyResult
{
    bool ok = true;

    /** Informational lines (manifest summary, build notes, hints). */
    std::vector<std::string> notes;

    /** Failure lines; non-empty exactly when !ok. */
    std::vector<std::string> problems;

    /** Artifacts whose recomputed checksum matched. */
    std::size_t artifactsVerified = 0;

    /** First missing/modified artifact path; empty when all match. */
    std::string firstBadArtifact;

    /** Generations whose replayed digest matched the ledger. */
    std::size_t generationsVerified = 0;

    /** First divergent generation; -1 when the replay matched. */
    int firstDivergentGeneration = -1;

    /** Id of the first divergent individual; 0 when not bisected. */
    std::uint64_t firstDivergentIndividual = 0;
};

/** Verify @p run_dir against its manifest. Never throws FatalError
 *  for recorded-run defects (they become problems); it can still
 *  fatal() on environmental errors such as an unwritable temp dir. */
VerifyResult verifyRun(const std::string& run_dir,
                       const VerifyOptions& options = {});

/** Render the result as the text `gest verify` prints. */
std::string formatVerify(const std::string& run_dir,
                         const VerifyResult& result);

} // namespace provenance
} // namespace gest

#endif // GEST_PROVENANCE_VERIFY_HH
