#include "provenance/compare.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "config/config.hh"
#include "core/individual.hh"
#include "output/report.hh"
#include "output/stats.hh"
#include "provenance/digest.hh"
#include "provenance/manifest.hh"
#include "stats/resample.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace provenance {

namespace {

/**
 * The run's champion rendered as text, using the run's own recorded
 * library so two runs with different instruction alphabets still
 * compare. @return false (with @p why set) when the run records no
 * checkpoints or configuration to render from.
 */
bool
championLines(const std::string& run_dir, std::vector<std::string>& out,
              double& fitness, std::string& why)
{
    std::string config_text;
    if (!tryReadFile(run_dir + "/run_configuration.xml", config_text)) {
        why = "no run_configuration.xml in " + run_dir;
        return false;
    }
    try {
        config::ParseOptions no_files;
        no_files.loadReferencedFiles = false;
        const config::RunConfig cfg =
            config::parseConfig(config_text, run_dir, no_files);
        const core::Individual best =
            output::fittestInRun(cfg.library, run_dir);
        out = core::renderLines(cfg.library, best);
        fitness = best.fitness;
        return true;
    } catch (const FatalError& err) {
        why = err.what();
        return false;
    }
}

/** Deterministic history columns of one row, comparable exactly. */
bool
rowsEqual(const output::HistoryRow& a, const output::HistoryRow& b)
{
    return a.generation == b.generation &&
           a.bestFitness == b.bestFitness &&
           a.averageFitness == b.averageFitness &&
           a.diversity == b.diversity && a.cacheHits == b.cacheHits &&
           a.cacheMisses == b.cacheMisses;
}

PerfDelta
makeDelta(const std::string& metric, double baseline, double candidate)
{
    PerfDelta d;
    d.metric = metric;
    d.baseline = baseline;
    d.candidate = candidate;
    d.relDelta =
        baseline != 0.0 ? (candidate - baseline) / baseline : 0.0;
    return d;
}

std::string
formatPercent(double rel)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * rel);
    return buf;
}

} // namespace

RunComparison
compareRuns(const std::string& baseline_dir,
            const std::string& candidate_dir)
{
    RunComparison cmp;
    cmp.baselineDir = baseline_dir;
    cmp.candidateDir = candidate_dir;

    const output::RunReport base = output::analyzeRun(baseline_dir);
    const output::RunReport cand = output::analyzeRun(candidate_dir);

    // Seeds, for context: a different seed explains every delta below.
    Manifest base_manifest, cand_manifest;
    const bool base_sealed =
        loadManifest(baseline_dir, base_manifest, nullptr);
    const bool cand_sealed =
        loadManifest(candidate_dir, cand_manifest, nullptr);
    if (base_sealed && cand_sealed) {
        if (base_manifest.hasSeed && cand_manifest.hasSeed &&
            base_manifest.seed != cand_manifest.seed)
            cmp.notes.push_back(
                "seeds differ (" + std::to_string(base_manifest.seed) +
                " vs " + std::to_string(cand_manifest.seed) +
                "): result deltas are expected");
        if (!base_manifest.configHash.empty() &&
            base_manifest.configHash != cand_manifest.configHash)
            cmp.notes.push_back(
                "configurations differ (" +
                base_manifest.configHash.substr(0, 12) + "… vs " +
                cand_manifest.configHash.substr(0, 12) +
                "…): result deltas are expected");
        if (buildFingerprintOf(base_manifest) !=
            buildFingerprintOf(cand_manifest))
            cmp.notes.push_back("builds differ (" +
                                buildFingerprintOf(base_manifest) +
                                " vs " +
                                buildFingerprintOf(cand_manifest) + ")");
    } else if (!base_sealed || !cand_sealed) {
        cmp.notes.push_back(
            std::string("no manifest.json in ") +
            (!base_sealed ? baseline_dir : candidate_dir) +
            "; comparing from history/checkpoints alone");
    }

    // Fitness trajectory and the other deterministic history columns.
    if (base.rows.size() != cand.rows.size()) {
        ++cmp.significantDeltas;
        cmp.deterministic.push_back(
            "generation counts differ: " +
            std::to_string(base.rows.size()) + " vs " +
            std::to_string(cand.rows.size()));
    }
    const std::size_t common =
        std::min(base.rows.size(), cand.rows.size());
    bool trajectory_differs = false;
    for (std::size_t i = 0; i < common; ++i) {
        const double delta = std::fabs(cand.rows[i].bestFitness -
                                       base.rows[i].bestFitness);
        cmp.maxAbsFitnessDelta = std::max(cmp.maxAbsFitnessDelta, delta);
        if (!rowsEqual(base.rows[i], cand.rows[i]) &&
            !trajectory_differs) {
            trajectory_differs = true;
            cmp.firstFitnessDivergence = base.rows[i].generation;
        }
    }
    if (trajectory_differs) {
        ++cmp.significantDeltas;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "fitness trajectory diverges at generation %d "
                      "(max |Δbest| %.6g over %zu generations)",
                      cmp.firstFitnessDivergence,
                      cmp.maxAbsFitnessDelta, common);
        cmp.deterministic.push_back(buf);
    }

    // Champion genome diff.
    std::vector<std::string> base_lines, cand_lines;
    double base_fit = 0.0, cand_fit = 0.0;
    std::string base_why, cand_why;
    const bool have_base =
        championLines(baseline_dir, base_lines, base_fit, base_why);
    const bool have_cand =
        championLines(candidate_dir, cand_lines, cand_fit, cand_why);
    if (have_base && have_cand) {
        if (base_lines != cand_lines || base_fit != cand_fit) {
            ++cmp.significantDeltas;
            std::size_t differing = 0;
            const std::size_t n =
                std::max(base_lines.size(), cand_lines.size());
            for (std::size_t i = 0; i < n; ++i) {
                const std::string* a =
                    i < base_lines.size() ? &base_lines[i] : nullptr;
                const std::string* b =
                    i < cand_lines.size() ? &cand_lines[i] : nullptr;
                if (a && b && *a == *b)
                    continue;
                ++differing;
                if (cmp.genomeDiff.size() >= 16) {
                    if (cmp.genomeDiff.size() == 16)
                        cmp.genomeDiff.push_back("…");
                    continue;
                }
                const std::string where =
                    "gene " + std::to_string(i) + ": ";
                if (a)
                    cmp.genomeDiff.push_back("- " + where + *a);
                if (b)
                    cmp.genomeDiff.push_back("+ " + where + *b);
            }
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "champion differs: %zu of %zu genes, fitness "
                          "%.6g vs %.6g",
                          differing, n, base_fit, cand_fit);
            cmp.deterministic.push_back(buf);
        }
    } else {
        cmp.notes.push_back("champion diff skipped: " +
                            (have_base ? cand_why : base_why));
    }

    // Digest ledgers, when both runs sealed one.
    std::vector<DigestRow> base_digests, cand_digests;
    std::string digest_error;
    if (loadDigests(baseline_dir, base_digests, &digest_error) &&
        loadDigests(candidate_dir, cand_digests, &digest_error)) {
        cmp.digestsCompared = true;
        const std::size_t rows =
            std::min(base_digests.size(), cand_digests.size());
        for (std::size_t i = 0; i < rows; ++i) {
            if (base_digests[i].digest != cand_digests[i].digest) {
                cmp.firstDigestDivergence = base_digests[i].generation;
                break;
            }
        }
        if (cmp.firstDigestDivergence < 0 &&
            base_digests.size() != cand_digests.size())
            cmp.firstDigestDivergence = static_cast<int>(rows);
        if (cmp.firstDigestDivergence >= 0) {
            ++cmp.significantDeltas;
            cmp.deterministic.push_back(
                "population digests diverge at generation " +
                std::to_string(cmp.firstDigestDivergence));
        }
    } else {
        cmp.notes.push_back("digest ledgers not compared: " +
                            digest_error);
    }

    // Performance: reported separately, never a significant delta by
    // itself. Per-generation evaluation times feed the permutation
    // test; the other metrics are run-level scalars.
    std::vector<double> base_eval_ms, cand_eval_ms;
    for (const output::HistoryRow& row : base.rows)
        base_eval_ms.push_back(row.evaluationMs);
    for (const output::HistoryRow& row : cand.rows)
        cand_eval_ms.push_back(row.evaluationMs);
    const bool timed = base.evaluationMs > 0.0 && cand.evaluationMs > 0.0;

    cmp.perf.push_back(makeDelta("evals_per_sec",
                                 base.evaluationsPerSecond(),
                                 cand.evaluationsPerSecond()));
    {
        PerfDelta d = makeDelta("evaluation_ms_total", base.evaluationMs,
                                cand.evaluationMs);
        if (timed) {
            d.resampled = true;
            d.pValue =
                stats::permutationPValue(base_eval_ms, cand_eval_ms);
            d.flagged =
                d.pValue < 0.05 && std::fabs(d.relDelta) > 0.10;
        }
        cmp.perf.push_back(d);
    }
    cmp.perf.push_back(makeDelta("selection_ms_total", base.selectionMs,
                                 cand.selectionMs));
    cmp.perf.push_back(makeDelta("crossover_ms_total", base.crossoverMs,
                                 cand.crossoverMs));
    cmp.perf.push_back(makeDelta("mutation_ms_total", base.mutationMs,
                                 cand.mutationMs));
    cmp.perf.push_back(
        makeDelta("io_ms_total", base.ioMs, cand.ioMs));
    cmp.perf.push_back(makeDelta("cache_hit_rate", base.cacheHitRate(),
                                 cand.cacheHitRate()));
    cmp.perf.push_back(makeDelta("steady_hit_rate",
                                 base.steadyHitRate(),
                                 cand.steadyHitRate()));
    for (const PerfDelta& d : cmp.perf)
        if (d.flagged)
            ++cmp.flaggedPerf;
    if (!timed)
        cmp.notes.push_back(
            "timing columns are zero (stats off); perf deltas carry no "
            "significance test");

    return cmp;
}

std::string
formatComparison(const RunComparison& cmp)
{
    std::ostringstream os;
    os << "compare: " << cmp.baselineDir << " (baseline) vs "
       << cmp.candidateDir << "\n";
    for (const std::string& note : cmp.notes)
        os << "  note: " << note << "\n";
    for (const std::string& line : cmp.deterministic)
        os << "  delta: " << line << "\n";
    for (const std::string& line : cmp.genomeDiff)
        os << "    " << line << "\n";
    if (cmp.deterministic.empty())
        os << "  deterministic results identical (trajectory, champion"
           << (cmp.digestsCompared ? ", digests" : "") << ")\n";
    os << "  perf:\n";
    for (const PerfDelta& d : cmp.perf) {
        char buf[200];
        if (d.resampled)
            std::snprintf(buf, sizeof(buf),
                          "    %-20s %12.4g -> %12.4g  (%s, p=%.3f%s)\n",
                          d.metric.c_str(), d.baseline, d.candidate,
                          formatPercent(d.relDelta).c_str(), d.pValue,
                          d.flagged ? ", FLAGGED" : "");
        else
            std::snprintf(buf, sizeof(buf),
                          "    %-20s %12.4g -> %12.4g  (%s)\n",
                          d.metric.c_str(), d.baseline, d.candidate,
                          formatPercent(d.relDelta).c_str());
        os << buf;
    }
    os << "significant deltas: " << cmp.significantDeltas << "\n";
    os << "flagged perf regressions: " << cmp.flaggedPerf << "\n";
    return os.str();
}

std::string
formatComparisonsJson(const std::vector<RunComparison>& comparisons)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n";
    os << "  \"gest_compare_version\": 1,\n";
    os << "  \"baseline\": \""
       << jsonEscape(comparisons.empty() ? ""
                                         : comparisons[0].baselineDir)
       << "\",\n";
    os << "  \"comparisons\": [\n";
    for (std::size_t c = 0; c < comparisons.size(); ++c) {
        const RunComparison& cmp = comparisons[c];
        os << "    {\n";
        os << "      \"candidate\": \"" << jsonEscape(cmp.candidateDir)
           << "\",\n";
        os << "      \"significant_deltas\": " << cmp.significantDeltas
           << ",\n";
        os << "      \"deterministic\": [";
        for (std::size_t i = 0; i < cmp.deterministic.size(); ++i)
            os << (i ? ", " : "") << "\""
               << jsonEscape(cmp.deterministic[i]) << "\"";
        os << "],\n";
        os << "      \"first_fitness_divergence\": "
           << cmp.firstFitnessDivergence << ",\n";
        os << "      \"max_abs_fitness_delta\": "
           << cmp.maxAbsFitnessDelta << ",\n";
        os << "      \"digests_compared\": "
           << (cmp.digestsCompared ? "true" : "false") << ",\n";
        os << "      \"first_digest_divergence\": "
           << cmp.firstDigestDivergence << ",\n";
        os << "      \"flagged_perf_regressions\": " << cmp.flaggedPerf
           << ",\n";
        os << "      \"perf\": [\n";
        for (std::size_t i = 0; i < cmp.perf.size(); ++i) {
            const PerfDelta& d = cmp.perf[i];
            os << "        {\"metric\": \"" << jsonEscape(d.metric)
               << "\", \"baseline\": " << d.baseline
               << ", \"candidate\": " << d.candidate
               << ", \"rel_delta\": " << d.relDelta
               << ", \"p_value\": " << d.pValue << ", \"resampled\": "
               << (d.resampled ? "true" : "false") << ", \"flagged\": "
               << (d.flagged ? "true" : "false") << "}"
               << (i + 1 < cmp.perf.size() ? "," : "") << "\n";
        }
        os << "      ],\n";
        os << "      \"notes\": [";
        for (std::size_t i = 0; i < cmp.notes.size(); ++i)
            os << (i ? ", " : "") << "\"" << jsonEscape(cmp.notes[i])
               << "\"";
        os << "]\n";
        os << "    }" << (c + 1 < comparisons.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace provenance
} // namespace gest
