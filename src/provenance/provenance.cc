#include "provenance/provenance.hh"

#include <algorithm>
#include <filesystem>

#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/sha256.hh"
#include "util/strutil.hh"

namespace gest {
namespace provenance {

namespace fs = std::filesystem;

std::string
inferArtifactKind(const std::string& rel_path)
{
    if (rel_path == "history.csv")
        return "history";
    if (rel_path == "digests.csv")
        return "digests";
    if (rel_path == "lineage.csv")
        return "lineage";
    if (rel_path == "analytics.csv")
        return "analytics";
    if (rel_path == "status.json")
        return "status";
    if (rel_path == "stats.txt" || rel_path == "metrics.json")
        return "stats";
    if (rel_path == "run_configuration.xml")
        return "config";
    if (rel_path == "run_template.txt")
        return "template";
    if (startsWith(rel_path, "population_") &&
        endsWith(rel_path, ".pop"))
        return "population";
    if (startsWith(rel_path, "waveforms/"))
        return "waveform";
    if (rel_path == "coverage.csv")
        return "coverage";
    if (startsWith(rel_path, "attribution/"))
        return "attribution";
    if (endsWith(rel_path, "trace.json"))
        return "trace";
    if (endsWith(rel_path, ".txt"))
        return "individual";
    return "other";
}

ProvenanceRecorder::ProvenanceRecorder(std::string run_dir,
                                       const isa::InstructionLibrary& lib)
    : _runDir(std::move(run_dir)), _lib(lib), _ledger(_runDir, lib)
{}

std::string
ProvenanceRecorder::seal(const SealInfo& info,
                         const std::map<std::string, std::string>& kinds)
{
    if (_sealed)
        panic("ProvenanceRecorder::seal called twice for ", _runDir);
    _sealed = true;

    Manifest m;
    m.configHash = canonicalConfigHash(info.configText);
    m.configBaseDir = info.configBaseDir;
    m.measurementClass = info.measurementClass;
    m.fitnessClass = info.fitnessClass;
    m.hasSeed = true;
    m.seed = info.ga.seed;
    m.populationSize = info.ga.populationSize;
    m.individualSize = info.ga.individualSize;
    m.generations = info.ga.generations;
    m.threads = info.ga.threads;
    m.fitnessCacheSize = info.ga.fitnessCacheSize;
    m.elitism = info.ga.elitism;
    m.steadyStateOverride = info.steadyStateOverride;
    m.waveformTopK = info.waveformTopK;
    m.recordStats = info.recordStats;
    m.recordAnalytics = info.recordAnalytics;
    m.recordCoverage = info.recordCoverage;
    m.recordAttribution = info.recordAttribution;
    m.generationsCompleted = info.generationsCompleted;
    m.evaluations = info.evaluations;
    m.bestFitness = info.bestFitness;
    m.bestId = info.bestId;
    m.digestsSealed = _ledger.rowsSealed();
    m.digestMsTotal = _ledger.digestUsTotal() / 1000.0;
    fillBuildInfo(m);

    // Walk the run directory; sorted relative paths make the artifact
    // table deterministic across filesystems.
    std::vector<std::string> rel_paths;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(_runDir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        std::string rel =
            fs::relative(it->path(), _runDir, ec).generic_string();
        if (ec || rel.empty() || rel == "manifest.json")
            continue;
        rel_paths.push_back(std::move(rel));
    }
    std::sort(rel_paths.begin(), rel_paths.end());

    for (const std::string& rel : rel_paths) {
        ArtifactEntry entry;
        entry.path = rel;
        const std::string full = _runDir + "/" + rel;
        if (!sha256File(full, entry.sha256)) {
            warn("cannot checksum ", full, "; leaving it out of the "
                 "manifest");
            continue;
        }
        entry.bytes = static_cast<std::uint64_t>(
            fs::file_size(full, ec));
        const auto kind = kinds.find(rel);
        entry.kind =
            kind != kinds.end() ? kind->second : inferArtifactKind(rel);
        m.artifacts.push_back(std::move(entry));
    }

    const std::string path = _runDir + "/manifest.json";
    writeFile(path, formatManifest(m));
    debug("provenance sealed: ", m.artifacts.size(), " artifacts, ",
          m.digestsSealed, " digests in ", path);
    return path;
}

} // namespace provenance
} // namespace gest
