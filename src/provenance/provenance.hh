/**
 * @file
 * The per-run provenance recorder: the digest ledger plus the final
 * manifest seal.
 *
 * One ProvenanceRecorder per recorded run, wired by the run driver
 * (config::runFromConfig). During the run its observer — attached with
 * Engine::addGenerationObserver() — appends one population digest per
 * evaluated generation to `digests.csv`. After every other artifact is
 * final (flight recorder sealed, analytics finished, stats dumped) the
 * driver calls seal(), which walks the run directory, checksums every
 * artifact and writes `manifest.json`.
 *
 * Recording is strictly observational: const views only, never the GA
 * RNG, so every pre-existing artifact is byte-identical with
 * provenance on or off.
 */

#ifndef GEST_PROVENANCE_PROVENANCE_HH
#define GEST_PROVENANCE_PROVENANCE_HH

#include <map>
#include <optional>
#include <string>

#include "core/engine.hh"
#include "core/ga_params.hh"
#include "provenance/digest.hh"
#include "provenance/manifest.hh"

namespace gest {
namespace provenance {

/** Everything seal() records that only the run driver knows. */
struct SealInfo
{
    std::string configText;     ///< the run's raw main configuration
    std::string configBaseDir;  ///< its relative-path anchor
    std::string measurementClass;
    std::string fitnessClass;
    core::GaParams ga;
    std::optional<bool> steadyStateOverride;
    int waveformTopK = 0;
    bool recordStats = true;
    bool recordAnalytics = true;
    bool recordCoverage = false;
    bool recordAttribution = false;

    // Run outcome.
    int generationsCompleted = 0;
    std::uint64_t evaluations = 0;
    double bestFitness = 0.0;
    std::uint64_t bestId = 0;
};

class ProvenanceRecorder
{
  public:
    /** @param lib must outlive the recorder. */
    ProvenanceRecorder(std::string run_dir,
                       const isa::InstructionLibrary& lib);

    /** The digest-ledger observer for Engine::addGenerationObserver. */
    core::Engine::GenerationCallback observer()
    {
        return _ledger.observer();
    }

    /** Digest rows sealed so far (the status.json provider). */
    std::uint64_t digestsSealed() const { return _ledger.rowsSealed(); }

    /**
     * Checksum every artifact under the run directory and write
     * manifest.json. Call once, after all other artifacts are final.
     * @param kinds artifact-kind labels by run-relative path (the
     *        RunWriter's registry); unlisted artifacts get a kind
     *        inferred from their name.
     * @return the manifest's path.
     */
    std::string seal(const SealInfo& info,
                     const std::map<std::string, std::string>& kinds);

  private:
    std::string _runDir;
    const isa::InstructionLibrary& _lib;
    DigestLedger _ledger;
    bool _sealed = false;
};

/**
 * @return the artifact kind inferred from a run-relative path
 * ("history", "population", "individual", "waveform", ...).
 */
std::string inferArtifactKind(const std::string& rel_path);

} // namespace provenance
} // namespace gest

#endif // GEST_PROVENANCE_PROVENANCE_HH
