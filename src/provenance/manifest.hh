/**
 * @file
 * The run manifest: `manifest.json`, sealed into every recorded run
 * directory so a run is auditable and replayable from its artifacts
 * alone.
 *
 * The manifest records everything needed to re-derive the run —
 * canonical configuration hash (independent of attribute order and
 * whitespace), RNG seed and generator identity, GA parameters — plus
 * everything needed to *explain* a failed replay: build and toolchain
 * fingerprint, platform, measurement/fitness classes, thread and
 * steady-state settings, and the SHA-256 checksum of every artifact the
 * run emitted. `gest verify` consumes it; `gest compare` uses it to
 * annotate cross-run deltas.
 *
 * The manifest is written last, after every other artifact is final,
 * and is excluded from its own checksum table.
 */

#ifndef GEST_PROVENANCE_MANIFEST_HH
#define GEST_PROVENANCE_MANIFEST_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gest {
namespace provenance {

/** Manifest schema version written by this build. */
constexpr int manifestVersion = 1;

/** The RNG identity recorded and checked on replay. */
extern const char* const rngGeneratorId;

/** One checksummed artifact inside the run directory. */
struct ArtifactEntry
{
    std::string path;    ///< relative to the run directory
    std::string sha256;  ///< 64 hex digits
    std::uint64_t bytes = 0;
    std::string kind;    ///< "history", "population", "lineage", ...
};

/** Everything manifest.json carries, in composable form. */
struct Manifest
{
    int version = manifestVersion;
    std::string created;  ///< ISO 8601 UTC seal time

    // Configuration identity.
    std::string configHash;     ///< canonicalConfigHash(run config)
    std::string configBaseDir;  ///< original relative-path anchor
    std::string measurementClass;
    std::string fitnessClass;

    // RNG identity: equal seeds give bit-identical runs.
    bool hasSeed = false;
    std::uint64_t seed = 0;
    std::string rngGenerator;

    // GA parameters that shape the search (informational; the replay
    // re-parses the recorded configuration for the full set).
    int populationSize = 0;
    int individualSize = 0;
    int generations = 0;
    int threads = 1;
    int fitnessCacheSize = 0;
    bool elitism = true;

    // Build/toolchain fingerprint of the sealing binary.
    std::string compiler;
    std::string buildType;
    std::string gitSha;

    // Platform fingerprint (uname).
    std::string os;
    std::string machine;

    // Measurement-affecting settings.
    std::optional<bool> steadyStateOverride;
    int waveformTopK = 0;
    bool recordStats = true;
    bool recordAnalytics = true;
    bool recordCoverage = false;
    bool recordAttribution = false;

    // Run summary.
    int generationsCompleted = 0;
    std::uint64_t evaluations = 0;
    double bestFitness = 0.0;
    std::uint64_t bestId = 0;
    std::uint64_t digestsSealed = 0;
    double digestMsTotal = 0.0;  ///< time spent hashing digests

    std::vector<ArtifactEntry> artifacts;
};

/**
 * SHA-256 of a canonical rendering of @p xml_text: attributes sorted by
 * name, whitespace normalized, comments dropped, child elements kept in
 * document order (order is semantic for <operands>/<instructions>).
 * Two configurations that differ only in formatting or attribute order
 * hash identically; any semantic change changes the hash. fatal() on
 * malformed XML.
 */
std::string canonicalConfigHash(const std::string& xml_text);

/** The current binary's "compiler, build type, git sha" fingerprint. */
std::string currentBuildFingerprint();

/** The git revision baked into the current binary ("unknown" without). */
std::string currentGitSha();

/** Fill the build/platform fields of @p m from the current binary. */
void fillBuildInfo(Manifest& m);

/** Render @p m as the manifest.json payload. */
std::string formatManifest(const Manifest& m);

/**
 * Parse `<run_dir>/manifest.json`. @return false — with @p error set
 * to an actionable message — when the file is absent, unparseable or
 * from an unsupported schema version.
 */
bool loadManifest(const std::string& run_dir, Manifest& out,
                  std::string* error);

/** @p m's fingerprint as recorded ("compiler, build type, git sha"). */
std::string buildFingerprintOf(const Manifest& m);

} // namespace provenance
} // namespace gest

#endif // GEST_PROVENANCE_MANIFEST_HH
