#include "provenance/digest.hh"

#include <fstream>
#include <sstream>

#include "stats/stats.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/sha256.hh"
#include "util/strutil.hh"

namespace gest {
namespace provenance {

std::string
canonicalIndividualText(const isa::InstructionLibrary& lib,
                        const core::Individual& ind)
{
    // Mirrors the per-individual records of serializePopulation(): the
    // two formats must agree so a digest of a deserialized checkpoint
    // equals the digest of the population it checkpointed. Precision 17
    // makes the doubles round-trip exactly.
    std::ostringstream os;
    os.precision(17);
    os << "individual " << ind.id << " " << ind.parent1 << " "
       << ind.parent2 << " " << ind.fitness << " "
       << (ind.evaluated ? 1 : 0) << "\n";
    os << "measurements " << ind.measurements.size();
    for (double v : ind.measurements)
        os << " " << v;
    os << "\n";
    os << "code " << ind.code.size() << "\n";
    for (const isa::InstructionInstance& inst : ind.code) {
        os << lib.instruction(inst.defIndex).name;
        for (std::uint32_t choice : inst.operandChoice)
            os << " " << choice;
        os << "\n";
    }
    return os.str();
}

std::string
populationDigest(const isa::InstructionLibrary& lib,
                 const core::Population& pop)
{
    Sha256 hasher;
    for (const core::Individual& ind : pop.individuals)
        hasher.update(canonicalIndividualText(lib, ind));
    return hasher.finishHex();
}

DigestLedger::DigestLedger(std::string run_dir,
                           const isa::InstructionLibrary& lib)
    : _runDir(std::move(run_dir)), _lib(lib)
{
    ensureDir(_runDir);
}

void
DigestLedger::append(const core::Population& pop,
                     const core::GenerationRecord& record)
{
    const double start = stats::nowUs();
    const std::string digest = populationDigest(_lib, pop);

    std::ofstream out(path(),
                      _started ? std::ios::app : std::ios::trunc);
    if (!out)
        fatal("cannot write ", path());
    if (!_started) {
        out << "# gest-digests v" << digestsCsvVersion << "\n";
        out << "generation,best_fitness,population_digest\n";
        _started = true;
    }
    out.precision(17);
    out << record.generation << ',' << record.bestFitness << ','
        << digest << '\n';
    ++_rows;
    _digestUs += stats::nowUs() - start;
}

core::Engine::GenerationCallback
DigestLedger::observer()
{
    return [this](const core::Population& pop,
                  const core::GenerationRecord& record) {
        append(pop, record);
    };
}

bool
loadDigests(const std::string& run_dir, std::vector<DigestRow>& out,
            std::string* error)
{
    out.clear();
    std::string text;
    const std::string path = run_dir + "/digests.csv";
    if (!tryReadFile(path, text)) {
        if (error)
            *error = path + " is missing: the run was recorded without "
                            "provenance (or by a pre-provenance build)";
        return false;
    }
    for (const std::string& raw : split(text, '\n')) {
        const std::string line = trim(raw);
        if (line.empty() || line.front() == '#')
            continue;
        if (startsWith(line, "generation,"))
            continue;
        const std::vector<std::string> fields = split(line, ',');
        if (fields.size() < 3 || fields[2].size() != 64) {
            if (error)
                *error = path + " has a malformed row: '" + line + "'";
            return false;
        }
        DigestRow row;
        row.generation =
            static_cast<int>(parseInt(fields[0], "digest generation"));
        row.bestFitness = parseDouble(fields[1], "digest best_fitness");
        row.digest = fields[2];
        out.push_back(std::move(row));
    }
    if (out.empty()) {
        if (error)
            *error = path + " holds no digest rows";
        return false;
    }
    return true;
}

} // namespace provenance
} // namespace gest
