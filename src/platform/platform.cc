#include "platform/platform.hh"

#include <cmath>

#include "signal/signal_probe.hh"
#include "util/logging.hh"

namespace gest {
namespace platform {

Platform::Platform(std::string name, arch::CpuConfig cpu,
                   power::EnergyModel energy,
                   thermal::ThermalConfig thermal, ChipConfig chip,
                   isa::InstructionLibrary library,
                   std::optional<pdn::PdnConfig> pdn_cfg)
    : _name(std::move(name)), _cpu(std::move(cpu)),
      _energy(std::move(energy)), _thermal(std::move(thermal)),
      _chip(chip), _library(std::move(library))
{
    _cpu.validate();
    if (_chip.numCores < 1)
        fatal("platform '", _name, "' needs at least one core");
    if (pdn_cfg)
        _pdn.emplace(*pdn_cfg);
    _init.baseRegister = isa::memBaseIntReg;
}

double
Platform::idleTempC() const
{
    return chipTempC(0.0);
}

double
Platform::chipTempC(double core_dynamic_watts,
                    double* chip_watts_out) const
{
    // Fixed point of T -> steady(dyn + cores * leak(T)): hotter silicon
    // leaks more, which heats the silicon.
    const double dyn = core_dynamic_watts > 0.0
                           ? core_dynamic_watts * _chip.numCores +
                                 _chip.uncoreActiveWatts
                           : _chip.idleWatts;
    double temp = _thermal.steadyStateDieTemp(dyn);
    double total = dyn;
    for (int iter = 0; iter < 64; ++iter) {
        total = dyn + _chip.numCores *
                          _energy.leakageWatts(temp, _chip.vdd);
        const double next = _thermal.steadyStateDieTemp(total);
        if (std::fabs(next - temp) < 1e-9) {
            temp = next;
            break;
        }
        temp = next;
    }
    if (chip_watts_out)
        *chip_watts_out = total;
    return temp;
}

std::vector<double>
Platform::chipCurrent(const power::PowerTrace& core_trace) const
{
    std::vector<double> amps;
    chipCurrentInto(core_trace, amps);
    return amps;
}

void
Platform::chipCurrentInto(const power::PowerTrace& core_trace,
                          std::vector<double>& amps) const
{
    // All cores run a virus instance each. Instances are assumed phase
    // aligned — the worst case the PDN can see, and what a dI/dt virus
    // achieves in practice by synchronizing through the loop period.
    amps.clear();
    amps.reserve(core_trace.watts.size());
    const double uncore_amps =
        _chip.uncoreActiveWatts / core_trace.vdd;
    for (double w : core_trace.watts)
        amps.push_back(w / core_trace.vdd * _chip.numCores + uncore_amps);
}

std::vector<double>
Platform::chipCurrentWithPhases(
    const power::PowerTrace& core_trace,
    const std::vector<std::size_t>& cycle_offsets) const
{
    if (static_cast<int>(cycle_offsets.size()) != _chip.numCores)
        fatal("platform '", _name, "' has ", _chip.numCores,
              " cores but ", cycle_offsets.size(),
              " phase offsets were given");
    const std::size_t n = core_trace.watts.size();
    std::vector<double> amps(n, _chip.uncoreActiveWatts /
                                    core_trace.vdd);
    if (n == 0)
        return amps;
    for (std::size_t offset : cycle_offsets) {
        for (std::size_t c = 0; c < n; ++c)
            amps[c] += core_trace.watts[(c + offset) % n] /
                       core_trace.vdd;
    }
    return amps;
}

Evaluation
Platform::evaluate(const std::vector<isa::InstructionInstance>& code,
                   const isa::InstructionLibrary& lib, bool want_voltage,
                   std::uint64_t min_cycles,
                   signal::SignalProbe* probe) const
{
    EvalScratch scratch;
    Evaluation eval;
    evaluateInto(code, lib, want_voltage, min_cycles, probe, scratch,
                 eval);
    return eval;
}

void
Platform::evaluateInto(const std::vector<isa::InstructionInstance>& code,
                       const isa::InstructionLibrary& lib,
                       bool want_voltage, std::uint64_t min_cycles,
                       signal::SignalProbe* probe, EvalScratch& scratch,
                       Evaluation& out) const
{
    if (code.empty())
        fatal("cannot evaluate an empty individual on platform '", _name,
              "'");
    if (want_voltage && !_pdn)
        fatal("platform '", _name,
              "' has no PDN model; voltage noise cannot be measured");

    // Reset the result but keep the trace's capacity (scratch use).
    {
        arch::SimResult sim = std::move(out.sim);
        out = Evaluation{};
        out.sim = std::move(sim);
    }
    Evaluation& eval = out;

    arch::decodeBodyInto(lib, code, scratch.body);
    arch::LoopSimulator sim(_cpu, _init);
    arch::RunOptions run_options;
    run_options.steadyState = scratch.steadyState;
    sim.runForCyclesInto(scratch.body, min_cycles, 2'000'000,
                         run_options, scratch.sim, eval.sim);
    eval.ipc = eval.sim.ipc;

    if (probe) {
        // Capture must see exactly the rows a full simulation stores;
        // expand a tiled trace before any probe consumer touches it.
        arch::materializeTrace(eval.sim);
        arch::captureActivitySignals(eval.sim, _cpu.freqGHz, *probe);
    }

    const power::PowerModel power_model(_energy, _cpu.freqGHz);

    // First pass: core dynamic power at a reference temperature (the
    // leakage term is added at chip level with feedback).
    const power::EnergyModel& em = _energy;
    const double leak_ref =
        em.leakageWatts(em.leakageRefTempC, _chip.vdd);
    const double core_total_at_ref =
        power_model.averageWatts(eval.sim, _chip.vdd,
                                 em.leakageRefTempC);
    const double core_dynamic = core_total_at_ref - leak_ref;

    double chip_watts = 0.0;
    eval.dieTempC = chipTempC(core_dynamic, &chip_watts);
    eval.chipPowerWatts = chip_watts;
    eval.corePowerWatts =
        core_dynamic + em.leakageWatts(eval.dieTempC, _chip.vdd);

    // The PDN transient runs for want_voltage (as always) and also
    // under a probe on PDN platforms, so power-only evaluations still
    // capture the full voltage waveform. Capture never feeds back: the
    // Evaluation fields are filled exactly as without a probe.
    const bool run_pdn = _pdn && (want_voltage || probe != nullptr);
    if (run_pdn) {
        power_model.traceInto(eval.sim, _chip.vdd, eval.dieTempC, probe,
                              scratch.power);
        chipCurrentInto(scratch.power, scratch.amps);
        if (probe)
            probe->recordWaveform("chip_current_a", "A",
                                  _cpu.freqGHz * 1e9, scratch.amps);
        // Without a probe the voltage trace itself is discarded, so
        // the tiled kernel produces just the scalars, reading the
        // (possibly tiled) current trace through the tiling map. With
        // a probe the trace was materialized above and the classic
        // path records the waveform; both step the same virtual cycles
        // in the same order, so the results are bit-identical.
        const pdn::VoltageTrace volts =
            probe ? _pdn->simulate(scratch.amps, _cpu.freqGHz, 256,
                                   probe)
                  : _pdn->simulateTiled(
                        scratch.amps.data(), eval.sim.tiling,
                        static_cast<std::size_t>(
                            eval.sim.tiling.clippedVirtualCycles(
                                arch::maxTraceCycles)),
                        _cpu.freqGHz, 256);
        if (want_voltage) {
            eval.vMin = volts.vMin;
            eval.vMax = volts.vMax;
            eval.peakToPeakV = volts.peakToPeak();
            eval.hasVoltage = true;
        }
        if (probe) {
            probe->annotate("v_min", volts.vMin);
            probe->annotate("v_max", volts.vMax);
            probe->annotate("peak_to_peak_v", volts.peakToPeak());
            probe->annotate("pdn_resonance_hz",
                            _pdn->config().resonanceHz());
            probe->annotate("pdn_q", _pdn->config().qFactor());
        }
    } else if (probe) {
        // No PDN on this platform: still capture the core power and
        // current waveforms the trace computes.
        power_model.traceInto(eval.sim, _chip.vdd, eval.dieTempC, probe,
                              scratch.power);
    }

    if (probe) {
        // Heat-up transient: settle the package at idle power, then
        // apply the virus's chip power for the probe's thermal window
        // — the simulated counterpart of polling the temperature
        // sensor through a heat-up run (§V).
        thermal::ThermalModel tm = _thermal;
        double idle_watts = 0.0;
        chipTempC(0.0, &idle_watts);
        tm.step(idle_watts, 3600.0);
        const signal::SignalProbe::Config& pc = probe->config();
        tm.captureTransient(chip_watts, pc.thermalWindowSeconds,
                            pc.thermalIntervals, probe);

        probe->annotate("ipc", eval.ipc);
        probe->annotate("core_power_w", eval.corePowerWatts);
        probe->annotate("chip_power_w", eval.chipPowerWatts);
        probe->annotate("die_temp_c", eval.dieTempC);
        probe->annotate("vdd", _chip.vdd);
        probe->annotate("freq_ghz", _cpu.freqGHz);
        probe->annotate("cycles",
                        static_cast<double>(eval.sim.cycles));
        probe->annotate("instructions",
                        static_cast<double>(eval.sim.instructions));
    }
}

std::shared_ptr<const Platform>
Platform::byName(const std::string& name)
{
    if (name == "cortex-a15")
        return cortexA15Platform();
    if (name == "cortex-a7")
        return cortexA7Platform();
    if (name == "xgene2")
        return xgene2Platform();
    if (name == "athlon-x4")
        return athlonX4Platform();
    if (name == "xgene2-llc")
        return xgene2LlcPlatform();
    fatal("unknown platform '", name, "'; available: cortex-a15, "
          "cortex-a7, xgene2, athlon-x4, xgene2-llc");
}

std::vector<std::string>
Platform::presetNames()
{
    return {"cortex-a15", "cortex-a7", "xgene2", "athlon-x4",
            "xgene2-llc"};
}

std::shared_ptr<const Platform>
cortexA15Platform()
{
    ChipConfig chip;
    chip.numCores = 2;
    chip.uncoreActiveWatts = 0.25;
    chip.idleWatts = 0.12;
    chip.vdd = 1.05;
    chip.tjMaxC = 90.0;
    return std::make_shared<Platform>(
        "cortex-a15", arch::cortexA15Config(), power::cortexA15Energy(),
        thermal::versatileExpressThermal(), chip, isa::armLikeLibrary());
}

std::shared_ptr<const Platform>
cortexA7Platform()
{
    ChipConfig chip;
    chip.numCores = 3;
    chip.uncoreActiveWatts = 0.1;
    chip.idleWatts = 0.05;
    chip.vdd = 1.0;
    chip.tjMaxC = 90.0;
    return std::make_shared<Platform>(
        "cortex-a7", arch::cortexA7Config(), power::cortexA7Energy(),
        thermal::versatileExpressThermal(), chip, isa::armLikeLibrary());
}

std::shared_ptr<const Platform>
xgene2Platform()
{
    ChipConfig chip;
    chip.numCores = 8;
    chip.uncoreActiveWatts = 6.0;
    chip.idleWatts = 9.0;
    chip.vdd = 0.98;
    chip.tjMaxC = 95.0;
    return std::make_shared<Platform>(
        "xgene2", arch::xgene2Config(), power::xgene2Energy(),
        thermal::xgene2Thermal(), chip, isa::armLikeLibrary());
}

std::shared_ptr<const Platform>
xgene2LlcPlatform()
{
    ChipConfig chip;
    chip.numCores = 8;
    chip.uncoreActiveWatts = 6.0;
    chip.idleWatts = 9.0;
    chip.vdd = 0.98;
    chip.tjMaxC = 95.0;
    auto plat = std::make_shared<Platform>(
        "xgene2-llc", arch::xgene2Config(), power::xgene2Energy(),
        thermal::xgene2Thermal(), chip, isa::armCacheStressLibrary());
    arch::InitState init = plat->initState();
    init.bufferBytes = 1u << 20; // 1 MiB: 4x the modelled L2
    plat->setInitState(init);
    return plat;
}

std::shared_ptr<const Platform>
athlonX4Platform()
{
    ChipConfig chip;
    chip.numCores = 4;
    chip.uncoreActiveWatts = 4.0;
    chip.idleWatts = 8.0;
    chip.vdd = 1.35;
    chip.tjMaxC = 71.0;
    return std::make_shared<Platform>(
        "athlon-x4", arch::athlonX4Config(), power::athlonX4Energy(),
        thermal::athlonX4Thermal(), chip, isa::x86LikeLibrary(),
        pdn::athlonPdn());
}

} // namespace platform
} // namespace gest
