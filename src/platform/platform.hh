/**
 * @file
 * Platform presets: the paper's Table II machines as simulated targets.
 *
 * A Platform bundles a CPU timing model, an energy model, a thermal
 * ladder, optionally a PDN, the default instruction library for that ISA
 * and the chip-level constants (core count, uncore power, voltage). It
 * offers one end-to-end evaluation entry point: decode a loop body,
 * simulate it, and derive power, temperature, IPC and voltage-noise
 * metrics — everything the bundled measurements need.
 */

#ifndef GEST_PLATFORM_PLATFORM_HH
#define GEST_PLATFORM_PLATFORM_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/simulator.hh"
#include "isa/standard_libs.hh"
#include "pdn/pdn_model.hh"
#include "power/power_model.hh"
#include "thermal/thermal_model.hh"

namespace gest {

namespace signal {
class SignalProbe;
} // namespace signal

namespace platform {

/** Chip-level constants around the core models. */
struct ChipConfig
{
    /** Cores on the chip; viruses run one instance per core (§IV). */
    int numCores = 4;

    /** Uncore dynamic power when cores are active (W). */
    double uncoreActiveWatts = 0.5;

    /** Chip dynamic power when idle (uncore + clock-gated cores) (W). */
    double idleWatts = 0.2;

    /** Operating supply voltage (V). */
    double vdd = 1.0;

    /** Vendor-specified maximum junction temperature (C). */
    double tjMaxC = 95.0;
};

/** Everything derived from evaluating one loop body on a platform. */
struct Evaluation
{
    arch::SimResult sim;

    double ipc = 0.0;

    /** Average single-core power (W). */
    double corePowerWatts = 0.0;

    /** Chip power with a virus instance on every core (W). */
    double chipPowerWatts = 0.0;

    /** Steady-state die temperature with leakage feedback (C). */
    double dieTempC = 0.0;

    /** Voltage-noise metrics; present only on platforms with a PDN. */
    double vMin = 0.0;
    double vMax = 0.0;
    double peakToPeakV = 0.0;
    bool hasVoltage = false;
};

/**
 * Per-worker reusable storage for repeated evaluations. A GA worker
 * (one Measurement clone) owns one of these; after the first
 * evaluation the hot loop is allocation-free — decode buffer,
 * simulator state, power trace and current trace all keep their
 * capacity across individuals. Copyable so Measurement::clone() keeps
 * working (a copy starts with the same settings and its own buffers).
 */
struct EvalScratch
{
    /** Run the steady-state fast path (bit-identical; see DESIGN). */
    bool steadyState = true;

    arch::SimScratch sim;
    std::vector<arch::MicroOp> body;
    power::PowerTrace power;
    std::vector<double> amps;
};

/**
 * A simulated target machine.
 */
class Platform
{
  public:
    Platform(std::string name, arch::CpuConfig cpu,
             power::EnergyModel energy, thermal::ThermalConfig thermal,
             ChipConfig chip, isa::InstructionLibrary library,
             std::optional<pdn::PdnConfig> pdn_cfg = std::nullopt);

    /** Platform identifier ("cortex-a15", ...). */
    const std::string& name() const { return _name; }

    /** The default instruction library for this platform's ISA. */
    const isa::InstructionLibrary& library() const { return _library; }

    /** CPU core model. */
    const arch::CpuConfig& cpu() const { return _cpu; }

    /** Energy model. */
    const power::EnergyModel& energy() const { return _energy; }

    /** Chip constants. */
    const ChipConfig& chip() const { return _chip; }

    /** Thermal ladder. */
    const thermal::ThermalModel& thermalModel() const { return _thermal; }

    /** PDN model, if this platform has voltage-sense instrumentation. */
    const pdn::PdnModel* pdnModel() const
    {
        return _pdn ? &*_pdn : nullptr;
    }

    /** Simulator initial state (register/memory patterns). */
    const arch::InitState& initState() const { return _init; }

    /** Override register/memory initialization (ablation studies). */
    void setInitState(const arch::InitState& init) { _init = init; }

    /**
     * Evaluate a loop body end to end.
     *
     * With a null @p probe (the default, and the whole GA hot path)
     * the capture layer costs one predicted branch per site. With a
     * probe, every signal the models compute along the way is also
     * recorded: interval IPC and cache/mispredict marks from the
     * timing sim, the per-cycle core power/current and chip current
     * traces, the PDN voltage transient (on PDN platforms, even for
     * power-only evaluations), a die-temperature heat-up transient,
     * and the scalar results as annotations. Capture only observes —
     * the returned Evaluation is bit-identical with or without it.
     *
     * @param code instruction instances drawn from @p lib
     * @param lib the library the instances reference
     * @param want_voltage also run the PDN transient (slower)
     * @param min_cycles minimum simulated post-warmup cycles
     * @param probe optional signal capture sink
     */
    Evaluation evaluate(const std::vector<isa::InstructionInstance>& code,
                        const isa::InstructionLibrary& lib,
                        bool want_voltage = false,
                        std::uint64_t min_cycles = 4096,
                        signal::SignalProbe* probe = nullptr) const;

    /**
     * evaluate() into caller-owned storage: all working buffers live
     * in @p scratch and @p out is reset keeping its trace capacity, so
     * a worker evaluating many individuals allocates nothing after
     * warm-up. scratch.steadyState selects the periodic-trace fast
     * path (default on); either way @p out is bit-identical to
     * evaluate()'s result, except that out.sim.trace may store the
     * tiled layout described by out.sim.tiling when no probe is
     * attached. With a probe the trace is materialized first, so
     * capture sees exactly the full-simulation rows.
     */
    void evaluateInto(const std::vector<isa::InstructionInstance>& code,
                      const isa::InstructionLibrary& lib,
                      bool want_voltage, std::uint64_t min_cycles,
                      signal::SignalProbe* probe, EvalScratch& scratch,
                      Evaluation& out) const;

    /** Evaluate against the platform's own library. */
    Evaluation
    evaluate(const std::vector<isa::InstructionInstance>& code,
             bool want_voltage = false,
             std::uint64_t min_cycles = 4096,
             signal::SignalProbe* probe = nullptr) const
    {
        return evaluate(code, _library, want_voltage, min_cycles, probe);
    }

    /** Die temperature of the idle chip (C). */
    double idleTempC() const;

    /**
     * Chip-level steady-state die temperature for a given per-core
     * dynamic power, including leakage-temperature feedback.
     */
    double chipTempC(double core_dynamic_watts,
                     double* chip_watts_out = nullptr) const;

    /** Per-core load-current trace scaled to the whole chip (A). */
    std::vector<double>
    chipCurrent(const power::PowerTrace& core_trace) const;

    /** chipCurrent() into caller-owned storage (cleared, capacity kept). */
    void chipCurrentInto(const power::PowerTrace& core_trace,
                         std::vector<double>& amps) const;

    /**
     * Chip current when each core runs the same periodic trace shifted
     * by a per-core cycle offset (cyclic shift). One offset per core;
     * all-zero offsets reduce to chipCurrent(). This models the §IV
     * setup — a virus instance per core — with controllable phase
     * alignment, the knob the multicore dI/dt study sweeps.
     */
    std::vector<double>
    chipCurrentWithPhases(const power::PowerTrace& core_trace,
                          const std::vector<std::size_t>&
                              cycle_offsets) const;

    /** Construct a preset by name; fatal() if unknown. */
    static std::shared_ptr<const Platform> byName(const std::string& name);

    /** Names of all bundled presets. */
    static std::vector<std::string> presetNames();

  private:
    std::string _name;
    arch::CpuConfig _cpu;
    power::EnergyModel _energy;
    thermal::ThermalModel _thermal;
    ChipConfig _chip;
    isa::InstructionLibrary _library;
    std::optional<pdn::PdnModel> _pdn;
    arch::InitState _init;
};

/** The Cortex-A15 side of the Versatile Express TC2 (2 cores). */
std::shared_ptr<const Platform> cortexA15Platform();

/** The Cortex-A7 side of the Versatile Express TC2 (3 cores). */
std::shared_ptr<const Platform> cortexA7Platform();

/** The X-Gene2 validation board (8 cores). */
std::shared_ptr<const Platform> xgene2Platform();

/** The AMD Athlon II X4 645 on the Asus M5A78L LE (4 cores, PDN). */
std::shared_ptr<const Platform> athlonX4Platform();

/**
 * The X-Gene2 configured for the LLC/DRAM stress extension (§VII): the
 * cache-stress instruction library and a 1 MiB data buffer exceeding
 * the modelled L2, so cache-miss optimization has room to work.
 */
std::shared_ptr<const Platform> xgene2LlcPlatform();

} // namespace platform
} // namespace gest

#endif // GEST_PLATFORM_PLATFORM_HH
