/**
 * @file
 * Pre-silicon what-if study (§VIII): "there is no fundamental
 * restriction that prevents the framework from being used for
 * pre-silicon stress-test generation in conjunction with accurate
 * power, temperature, performance and voltage-noise models".
 *
 * This example plays CPU architect: sweep a design knob (issue width)
 * of a hypothetical server core, regenerate the worst-case power virus
 * *for each design point*, and report how the guaranteed-worst-case
 * power — the number a power-delivery team must provision for — scales.
 * The point the paper's tool makes possible: each design point gets its
 * own adversarial workload instead of reusing one fixed stressor.
 */

#include <cstdio>

#include "core/engine.hh"
#include "measure/sim_measurements.hh"
#include "platform/platform.hh"

int
main()
try {
    using namespace gest;
    setQuiet(true);

    std::printf("pre-silicon sweep: issue width of a hypothetical "
                "server core vs worst-case (virus) power\n\n");
    std::printf("%-12s %12s %10s %14s %s\n", "issue_width",
                "virus_power", "virus_IPC", "virus_vs_fixed",
                "virus breakdown");

    auto design_point = [](int width) {
        arch::CpuConfig cpu = arch::xgene2Config();
        cpu.issueWidth = width;
        cpu.fetchWidth = width;
        platform::ChipConfig chip;
        chip.numCores = 8;
        chip.uncoreActiveWatts = 6.0;
        chip.idleWatts = 9.0;
        chip.vdd = 0.98;
        return std::make_shared<platform::Platform>(
            "whatif-w" + std::to_string(width), cpu,
            power::xgene2Energy(), thermal::xgene2Thermal(), chip,
            isa::armLikeLibrary());
    };

    auto evolve = [](const std::shared_ptr<platform::Platform>& plat,
                     std::uint64_t seed) {
        core::GaParams params;
        params.populationSize = 24;
        params.individualSize = 50;
        params.mutationRate = 0.02;
        params.generations = 18;
        params.seed = seed;
        measure::SimPowerMeasurement meas(plat->library(), plat);
        fitness::DefaultFitness fit;
        core::Engine engine(params, plat->library(), meas, fit);
        engine.run();
        return engine.bestEver();
    };

    // A fixed reference stressor, tuned once on the 4-wide baseline —
    // what a team without a generator would reuse at every design
    // point.
    const core::Individual fixed_stressor =
        evolve(design_point(4), 904);

    for (int width = 2; width <= 5; ++width) {
        const auto plat = design_point(width);
        // Regenerate the worst case for THIS design point.
        const core::Individual virus =
            evolve(plat, 900 + static_cast<std::uint64_t>(width));

        const platform::Evaluation eval =
            plat->evaluate(virus.code, plat->library());
        // What the fixed 4-wide-tuned stressor reports on this design
        // point — the power a reused stressor would provision for.
        const double fixed_power =
            plat->evaluate(fixed_stressor.code, plat->library())
                .chipPowerWatts;
        std::printf("%-12d %10.2f W %10.2f %13.1f%% %s\n", width,
                    eval.chipPowerWatts, eval.ipc,
                    (eval.chipPowerWatts / fixed_power - 1.0) * 100.0,
                    core::breakdownToString(
                        core::classBreakdown(plat->library(), virus))
                        .c_str());
    }

    std::printf(
        "\nvirus_vs_fixed: how much worst-case power a fixed stressor "
        "(tuned on one design point) underestimates at other design "
        "points — the margin a per-design-point generator recovers.\n"
        "note: the width-4 row is the reference itself, so its column "
        "reads ~0%%.\n");
    return 0;
} catch (const gest::FatalError& err) {
    std::fprintf(stderr, "fatal: %s\n", err.what());
    return 1;
}
