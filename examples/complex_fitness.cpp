/**
 * @file
 * Multi-objective search with the paper's Equation 1 (§V.A): maximize
 * chip temperature while minimizing the number of unique instructions.
 * Also demonstrates registering a custom fitness class by name — the
 * plug-and-play extension mechanism the paper emphasizes.
 */

#include <cstdio>

#include "core/engine.hh"
#include "fitness/fitness.hh"
#include "measure/sim_measurements.hh"
#include "platform/platform.hh"

namespace {

/**
 * A custom user fitness: temperature per watt (thermal efficiency of
 * the stressor). Registered by name like a user's Python subclass.
 */
class TempPerWattFitness : public gest::fitness::Fitness
{
  public:
    double
    getFitness(const gest::core::Individual& ind,
               const gest::isa::InstructionLibrary&) const override
    {
        // Measurement layout of SimTemperatureMeasurement:
        // [die_temp_c, avg_chip_power_w, ipc].
        if (ind.measurements.size() < 2 || ind.measurements[1] <= 0.0)
            return 0.0;
        return ind.measurements[0] / ind.measurements[1];
    }

    std::string name() const override { return "TempPerWattFitness"; }
};

} // namespace

int
main()
try {
    using namespace gest;
    setQuiet(true);

    const auto plat = platform::xgene2Platform();
    const isa::InstructionLibrary& lib = plat->library();
    const double idle = plat->idleTempC();

    core::GaParams params;
    params.populationSize = 30;
    params.individualSize = 50;
    params.mutationRate = core::GaParams::mutationRateForSize(50);
    params.generations = 25;
    params.seed = 5;

    // Plain temperature search.
    measure::SimTemperatureMeasurement meas(lib, plat);
    fitness::DefaultFitness plain;
    core::Engine plain_engine(params, lib, meas, plain);
    std::printf("search 1: plain temperature fitness...\n");
    plain_engine.run();
    const core::Individual& power_virus = plain_engine.bestEver();

    // Equation 1: half temperature score, half simplicity score.
    measure::SimTemperatureMeasurement meas2(lib, plat);
    fitness::TemperatureSimplicityFitness equation1(
        idle, plat->chip().tjMaxC);
    core::Engine complex_engine(params, lib, meas2, equation1);
    std::printf("search 2: Equation 1 (temperature + simplicity)...\n");
    complex_engine.run();
    const core::Individual& simple_virus = complex_engine.bestEver();

    const auto e_power = plat->evaluate(power_virus.code, lib);
    const auto e_simple = plat->evaluate(simple_virus.code, lib);
    std::printf("\n%-20s %10s %10s %8s\n", "virus", "temp_C",
                "power_W", "unique");
    std::printf("%-20s %10.2f %10.2f %8zu\n", "powerVirus",
                e_power.dieTempC, e_power.chipPowerWatts,
                core::uniqueInstructionCount(power_virus));
    std::printf("%-20s %10.2f %10.2f %8zu\n", "powerVirusSimple",
                e_simple.dieTempC, e_simple.chipPowerWatts,
                core::uniqueInstructionCount(simple_virus));
    std::printf("\nthe simple virus reaches about the same temperature "
                "with fewer unique opcodes — easier to use for "
                "isolating hotspots in initial silicon (§V.A).\n");

    // Custom fitness registration: the C++ analog of dropping a new
    // Python class next to the framework and naming it in the config.
    fitness::FitnessRegistry& registry =
        fitness::FitnessRegistry::instance();
    if (!registry.contains("TempPerWattFitness"))
        registry.registerFactory("TempPerWattFitness", [] {
            return std::make_unique<TempPerWattFitness>();
        });
    auto custom = registry.create("TempPerWattFitness");
    measure::SimTemperatureMeasurement meas3(lib, plat);
    core::GaParams custom_params = params;
    custom_params.generations = 10;
    core::Engine custom_engine(custom_params, lib, meas3, *custom);
    std::printf("\nsearch 3: custom registered fitness "
                "('TempPerWattFitness', 10 generations)...\n");
    custom_engine.run();
    std::printf("best temperature-per-watt: %.3f C/W\n",
                custom_engine.bestEver().fitness);
    return 0;
} catch (const gest::FatalError& err) {
    std::fprintf(stderr, "fatal: %s\n", err.what());
    return 1;
}
