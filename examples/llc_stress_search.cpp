/**
 * @file
 * LLC/DRAM stress extension (§VII): the paper sketches stressing the
 * last-level cache or DRAM "by instructing the framework to optimize
 * towards cache-misses and providing load/store instruction definitions
 * with various strides". This example does exactly that on the
 * X-Gene2-with-L2 platform: the GA controls the stride of pointer
 * advances and the load/store mix, and the fitness is DRAM accesses per
 * thousand instructions.
 */

#include <cstdio>

#include "core/engine.hh"
#include "measure/sim_measurements.hh"
#include "platform/platform.hh"

int
main()
try {
    using namespace gest;
    setQuiet(true);

    const auto plat = platform::xgene2LlcPlatform();
    const isa::InstructionLibrary& lib = plat->library();
    std::printf("platform: %s, L1 %d KiB, L2 %d KiB, buffer %u KiB\n",
                plat->name().c_str(),
                plat->cpu().l1d.sets * plat->cpu().l1d.ways *
                    plat->cpu().l1d.lineBytes / 1024,
                plat->cpu().l2.sets * plat->cpu().l2.ways *
                    plat->cpu().l2.lineBytes / 1024,
                plat->initState().bufferBytes / 1024);

    core::GaParams params;
    params.populationSize = 30;
    params.individualSize = 30;
    params.mutationRate = core::GaParams::mutationRateForSize(30);
    params.generations = 25;
    params.seed = 77;

    measure::SimCacheMissMeasurement meas(lib, plat);
    fitness::DefaultFitness fit;
    core::Engine engine(params, lib, meas, fit);
    std::printf("searching for a DRAM-traffic virus...\n");
    engine.run();

    const core::Individual& virus = engine.bestEver();
    std::printf("\nbest individual: %.1f DRAM accesses per 1k "
                "instructions\n",
                virus.fitness);
    for (const std::string& line : core::renderLines(lib, virus))
        std::printf("    %s\n", line.c_str());

    const platform::Evaluation eval = plat->evaluate(virus.code, lib);
    std::printf("\nL1 hit rate %.1f%%, L2 hit rate %.1f%%, IPC %.2f, "
                "chip power %.1f W\n",
                eval.sim.l1HitRate() * 100.0,
                eval.sim.l2HitRate() * 100.0, eval.ipc,
                eval.chipPowerWatts);

    // Contrast with an L1-resident loop: no pointer advance.
    const std::vector<isa::InstructionInstance> resident = {
        lib.makeInstance("LDR", {"x2", "x10", "0"}),
        lib.makeInstance("LDR", {"x3", "x10", "64"}),
        lib.makeInstance("ADD", {"x4", "x5", "x6"}),
    };
    const platform::Evaluation base = plat->evaluate(resident, lib);
    std::printf("L1-resident loop for comparison: %.1f DRAM/kinstr, "
                "L1 hit rate %.1f%%\n",
                base.sim.dramPerKiloInstr(),
                base.sim.l1HitRate() * 100.0);
    std::printf("\nthe GA discovered strided access: this is the "
                "paper's LLC/DRAM stress extension working end to "
                "end.\n");
    return 0;
} catch (const gest::FatalError& err) {
    std::fprintf(stderr, "fatal: %s\n", err.what());
    return 1;
}
