/**
 * @file
 * Native-hardware workflow: exactly what the original tool does —
 * print each individual into a source template, assemble it with the
 * host toolchain, execute it, and read hardware counters. On hosts
 * that allow perf_event_open this runs a real IPC-virus search on the
 * machine's own CPU; otherwise it demonstrates code generation and
 * execution (or degrades to emission only in fully sandboxed
 * environments).
 */

#include <cstdio>

#include "core/engine.hh"
#include "isa/standard_libs.hh"
#include "native/asm_emit.hh"
#include "native/native_measurement.hh"
#include "native/runner.hh"

int
main()
try {
    using namespace gest;
    setQuiet(true);

    const isa::InstructionLibrary lib = isa::x86LikeLibrary();

    // Show the generated program for a small hand-rolled individual.
    const std::vector<isa::InstructionInstance> sample = {
        lib.makeInstance("MULPD", {"xmm0", "xmm1"}),
        lib.makeInstance("ADDPD", {"xmm2", "xmm3"}),
        lib.makeInstance("ADD", {"rax", "rcx"}),
        lib.makeInstance("LOAD", {"r9", "r10", "32"}),
        lib.makeInstance("JNEXT", {}),
    };
    native::EmitOptions options;
    options.iterations = 500'000;
    std::printf("generated x86-64 program for a 5-instruction "
                "individual:\n%s\n",
                native::emitX86Program(lib, sample, options).c_str());

    if (!native::NativeRunner::toolchainAvailable()) {
        std::printf("no host toolchain: stopping after emission "
                    "(simulated platforms remain available).\n");
        return 0;
    }

    native::NativeRunner runner;
    const native::RunOutcome outcome = runner.assembleAndRun(
        native::emitX86Program(lib, sample, options));
    std::printf("executed natively: exit %d in %.3f s", outcome.exitStatus,
                outcome.wallSeconds);
    if (outcome.ipc())
        std::printf(", measured IPC %.2f", *outcome.ipc());
    if (outcome.packageJoules)
        std::printf(", package energy %.2f J (RAPL)",
                    *outcome.packageJoules);
    std::printf("\n");

    if (!native::NativePerfMeasurement::available()) {
        std::printf("\nperf counters unavailable in this environment; "
                    "skipping the native GA search.\n");
        return 0;
    }

    // A genuine hardware GA: maximize the host CPU's measured IPC.
    std::printf("\nrunning a native IPC-virus search on this host "
                "(small budget)...\n");
    core::GaParams params;
    params.populationSize = 10;
    params.individualSize = 20;
    params.mutationRate = core::GaParams::mutationRateForSize(20);
    params.generations = 8;
    params.seed = 321;

    native::NativePerfMeasurement meas(lib);
    const xml::Document meas_cfg =
        xml::parse("<config iterations=\"300000\"/>");
    meas.init(&meas_cfg.root());
    fitness::DefaultFitness fit;
    core::Engine engine(params, lib, meas, fit);
    engine.run();

    const core::Individual& best = engine.bestEver();
    std::printf("best measured IPC on this machine: %.2f\n",
                best.fitness);
    for (const std::string& line : core::renderLines(lib, best))
        std::printf("    %s\n", line.c_str());
    return 0;
} catch (const gest::FatalError& err) {
    std::fprintf(stderr, "fatal: %s\n", err.what());
    return 1;
}
