/**
 * @file
 * Voltage-noise (dI/dt) virus workflow (§VI): size the loop with the
 * paper's resonance rule, search with the oscilloscope-analog
 * measurement, then characterize the V_MIN of the found virus against
 * Prime95-like and the AMD-stability-like baselines, lowering the
 * supply in 12.5 mV steps like the paper does.
 */

#include <cstdio>

#include "arch/simulator.hh"
#include "core/engine.hh"
#include "measure/sim_measurements.hh"
#include "platform/platform.hh"
#include "power/power_model.hh"
#include "workloads/workloads.hh"

namespace {

std::vector<double>
chipCurrent(const std::shared_ptr<const gest::platform::Platform>& plat,
            const std::vector<gest::isa::InstructionInstance>& code)
{
    using namespace gest;
    arch::LoopSimulator sim(plat->cpu(), plat->initState());
    const arch::SimResult result =
        sim.runForCycles(arch::decodeBody(plat->library(), code), 8192);
    const power::PowerModel model(plat->energy(), plat->cpu().freqGHz);
    const platform::Evaluation eval =
        plat->evaluate(code, plat->library());
    return plat->chipCurrent(
        model.trace(result, plat->chip().vdd, eval.dieTempC));
}

} // namespace

int
main()
try {
    using namespace gest;
    setQuiet(true);

    const auto plat = platform::athlonX4Platform();
    const isa::InstructionLibrary& lib = plat->library();
    const pdn::PdnModel& pdn_model = *plat->pdnModel();

    // The paper's rule: loop length = IPC * f_clk / f_resonance, with
    // IPC about half the core's peak.
    const int loop_len = core::GaParams::didtLoopLength(
        1.5, plat->cpu().freqGHz, pdn_model.config().resonanceHz());
    std::printf("PDN resonance %.1f MHz (Q=%.2f) at %.1f GHz -> loop "
                "length %d instructions\n",
                pdn_model.config().resonanceHz() / 1e6,
                pdn_model.config().qFactor(), plat->cpu().freqGHz,
                loop_len);

    core::GaParams params;
    params.populationSize = 30;
    params.individualSize = loop_len;
    params.mutationRate =
        core::GaParams::mutationRateForSize(loop_len);
    params.generations = 25;
    params.seed = 99;

    measure::SimVoltageNoiseMeasurement meas(lib, plat);
    fitness::DefaultFitness fit;
    core::Engine engine(params, lib, meas, fit);
    std::printf("searching for a dI/dt virus...\n");
    engine.run();

    const core::Individual& virus = engine.bestEver();
    std::printf("\nbest dI/dt virus: %.1f mV peak-to-peak\n",
                virus.fitness * 1e3);
    for (const std::string& line : core::renderLines(lib, virus))
        std::printf("    %s\n", line.c_str());

    // V_MIN characterization, 12.5 mV steps, like Figure 9.
    pdn::VminConfig vcfg;
    vcfg.vNominal = plat->chip().vdd;
    vcfg.vCritical = 1.150;
    const pdn::VminModel vmin(pdn_model, vcfg);

    std::printf("\nV_MIN characterization (supply lowered in %.1f mV "
                "steps, fail when v(t) < %.3f V):\n",
                vcfg.stepVolts * 1e3, vcfg.vCritical);
    std::printf("  %-24s %.4f V\n", "dIdt_GA_virus",
                vmin.characterize(chipCurrent(plat, virus.code),
                                  plat->cpu().freqGHz));
    const std::vector<workloads::Workload> baselines =
        workloads::x86Baselines(lib);
    for (const char* name : {"prime95", "amd_stability_test",
                             "coremark"}) {
        const workloads::Workload& w = workloads::byName(baselines, name);
        std::printf("  %-24s %.4f V\n", name,
                    vmin.characterize(chipCurrent(plat, w.code),
                                      plat->cpu().freqGHz));
    }
    std::printf("\nthe virus fails at the highest supply: it is the "
                "strongest stability test (Figure 9's shape).\n");
    return 0;
} catch (const gest::FatalError& err) {
    std::fprintf(stderr, "fatal: %s\n", err.what());
    return 1;
}
