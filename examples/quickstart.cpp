/**
 * @file
 * Quickstart: run a small GA power-virus search on the simulated
 * Cortex-A15 from an XML configuration string — the same workflow the
 * original tool drives from its main configuration file.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "config/config.hh"
#include "output/stats.hh"

int
main()
try {
    using namespace gest;

    // The main configuration (§III.B.1): GA parameters from Table I
    // (scaled down so the example finishes in seconds), the bundled ARM
    // instruction library, a power measurement against the simulated
    // Cortex-A15, and the default first-measurement fitness.
    const char* configuration = R"(
<gest_configuration>
  <ga population_size="30" individual_size="50" mutation_rate="0.02"
      crossover_operator="one_point" parent_selection_method="tournament"
      tournament_size="5" elitism="true" generations="25" seed="42"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a15"/>
  </measurement>
  <fitness class="DefaultFitness"/>
</gest_configuration>
)";

    config::RunConfig cfg = config::parseConfig(configuration);
    std::printf("searching for a Cortex-A15 power virus "
                "(%d individuals x %d generations)...\n",
                cfg.ga.populationSize, cfg.ga.generations);

    const config::RunResult result = config::runFromConfig(cfg);

    std::printf("\nbest individual (id %llu, fitness %.3f W chip "
                "power):\n",
                static_cast<unsigned long long>(result.best.id),
                result.best.fitness);
    for (const std::string& line :
         core::renderLines(cfg.library, result.best))
        std::printf("    %s\n", line.c_str());

    std::printf("\nbreakdown: %s, %zu unique instructions\n",
                core::breakdownToString(
                    core::classBreakdown(cfg.library, result.best))
                    .c_str(),
                core::uniqueInstructionCount(result.best));

    std::printf("\nconvergence (best fitness per generation):\n");
    for (const core::GenerationRecord& rec : result.history) {
        if (rec.generation % 5 == 0 ||
            rec.generation + 1 == static_cast<int>(result.history.size()))
            std::printf("  gen %2d: %.3f W\n", rec.generation,
                        rec.bestFitness);
    }
    return 0;
} catch (const gest::FatalError& err) {
    std::fprintf(stderr, "fatal: %s\n", err.what());
    return 1;
}
