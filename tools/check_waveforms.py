#!/usr/bin/env python3
"""Validate waveform artifacts written by gest's signal-capture layer.

Checks the `# gest-waveforms v1` CSV format (flight-recorder captures in
<run_dir>/waveforms/ and `gest probe` output) plus physics sanity:

  * the version comment, `# annotation` and `# signal` headers and the
    `signal,kind,index,time_s,value` rows are well-formed;
  * every declared signal has exactly its declared sample count, with
    contiguous indices and a time base matching its sample rate;
  * the scalar Evaluation annotations agree with the captured traces:
    v_min / v_max / peak_to_peak_v re-derived from the post-warmup
    pdn_voltage_v samples match to 1e-9 (when no samples were dropped),
    the voltage stays below the supply, the thermal transient stays
    inside its endpoints, interval IPC is non-negative and bounded;
  * the JSON twin (<base>.json) carries the same annotations, signals
    and sample data;
  * the spectrum companion (<base>_spectrum.csv), when present, scans
    ascending frequencies with non-negative amplitudes;
  * a directory's index.csv references existing files with fitness
    non-increasing by rank.

Usage:
  check_waveforms.py <file.csv | waveforms_dir>   validate artifacts
  check_waveforms.py --drive <gest-binary>        run a tiny PDN GA with
                                                  <output waveforms="2">,
                                                  validate the sealed
                                                  captures, then `gest
                                                  probe` the run and
                                                  validate that too

With GEST_CHECK_ARTIFACT_DIR set, --drive copies its scratch run
directory there before exiting on failure, so CI can upload it.

Exit status 0 when the artifacts are valid; 1 with a message otherwise.
"""

import json
import math
import os
import shutil
import subprocess
import sys
import tempfile

TOLERANCE = 1e-9

DRIVE_CONFIG = """<?xml version="1.0"?>
<gest_configuration>
  <ga population_size="8" individual_size="10" generations="4" seed="6"
      threads="2"/>
  <library name="x86"/>
  <measurement class="SimVoltageNoiseMeasurement">
    <config platform="athlon-x4" min_cycles="4096"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="out" waveforms="2" stats="false"/>
</gest_configuration>
"""

ARTIFACT_SRC = None  # set by drive(); copied out by fail() on failure


def fail(message):
    if ARTIFACT_SRC is not None:
        dest = os.environ.get("GEST_CHECK_ARTIFACT_DIR")
        if dest:
            target = os.path.join(dest, "check_waveforms")
            shutil.copytree(ARTIFACT_SRC, target, dirs_exist_ok=True)
            print(f"check_waveforms: scratch copied to {target}",
                  file=sys.stderr)
    print(f"check_waveforms: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_csv(path):
    """Parse one gest-waveforms CSV into (annotations, signals, marks).

    signals: name -> dict(unit, rate_hz, warmup, samples=[...],
    declared_samples, dropped). marks: list of (kind, index, time_s).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    if not lines or lines[0] != "# gest-waveforms v1":
        fail(f"{path} lacks the '# gest-waveforms v1' version header")

    annotations = {}
    signals = {}
    body_start = None
    for lineno, line in enumerate(lines[1:], start=2):
        if line.startswith("# annotation "):
            parts = line.split(" ", 3)
            if len(parts) != 4:
                fail(f"{path}:{lineno}: malformed annotation: {line}")
            annotations[parts[2]] = float(parts[3])
        elif line.startswith("# signal "):
            fields = line.split(" ")
            if len(fields) != 8:
                fail(f"{path}:{lineno}: malformed signal header: {line}")
            name = fields[2]
            meta = {}
            for field in fields[3:]:
                key, _, value = field.partition("=")
                meta[key] = value
            for key in ("unit", "rate_hz", "warmup", "samples",
                        "dropped"):
                if key not in meta:
                    fail(f"{path}:{lineno}: signal '{name}' lacks "
                         f"'{key}='")
            signals[name] = {
                "unit": meta["unit"],
                "rate_hz": float(meta["rate_hz"]),
                "warmup": int(meta["warmup"]),
                "declared_samples": int(meta["samples"]),
                "dropped": int(meta["dropped"]),
                "samples": [],
            }
            if signals[name]["rate_hz"] <= 0:
                fail(f"{path}:{lineno}: signal '{name}' has "
                     f"non-positive rate_hz")
        elif line.startswith("#"):
            fail(f"{path}:{lineno}: unexpected comment: {line}")
        else:
            if line != "signal,kind,index,time_s,value":
                fail(f"{path}:{lineno}: expected the column header, "
                     f"got: {line}")
            body_start = lineno
            break
    if body_start is None:
        fail(f"{path} has no column header row")

    marks = []
    for lineno, line in enumerate(lines[body_start:],
                                  start=body_start + 1):
        parts = line.split(",")
        if len(parts) != 5:
            fail(f"{path}:{lineno}: expected 5 columns: {line}")
        name, kind, index, time_s, value = parts
        if kind == "sample":
            if name not in signals:
                fail(f"{path}:{lineno}: sample for undeclared signal "
                     f"'{name}'")
            sig = sig_entry = signals[name]
            if int(index) != len(sig_entry["samples"]):
                fail(f"{path}:{lineno}: signal '{name}' sample index "
                     f"{index} out of order")
            expected_t = int(index) / sig["rate_hz"]
            if not math.isclose(float(time_s), expected_t,
                                rel_tol=1e-12, abs_tol=1e-15):
                fail(f"{path}:{lineno}: signal '{name}' time {time_s} "
                     f"does not match index/rate {expected_t}")
            sample = float(value)
            if not math.isfinite(sample):
                fail(f"{path}:{lineno}: non-finite sample {value}")
            sig_entry["samples"].append(sample)
        elif kind == "mark":
            marks.append((name, int(index), float(time_s)))
        else:
            fail(f"{path}:{lineno}: unknown row kind '{kind}'")

    for name, sig in signals.items():
        if len(sig["samples"]) != sig["declared_samples"]:
            fail(f"{path}: signal '{name}' declares "
                 f"{sig['declared_samples']} samples but carries "
                 f"{len(sig['samples'])}")
    return annotations, signals, marks


def summary_start(sig):
    """First index the summary stats cover (the C++ warmup clamp)."""
    n = len(sig["samples"])
    if sig["warmup"] >= n:
        return n // 2
    return sig["warmup"]


def check_physics(path, annotations, signals, marks):
    voltage = signals.get("pdn_voltage_v")
    if voltage is not None and voltage["samples"]:
        post = voltage["samples"][summary_start(voltage):]
        v_min, v_max = min(post), max(post)
        if voltage["dropped"] == 0:
            for key, derived in (("v_min", v_min), ("v_max", v_max),
                                 ("peak_to_peak_v", v_max - v_min)):
                if key not in annotations:
                    fail(f"{path}: pdn_voltage_v captured but "
                         f"annotation '{key}' is missing")
                if abs(annotations[key] - derived) > TOLERANCE:
                    fail(f"{path}: annotation {key}="
                         f"{annotations[key]!r} disagrees with the "
                         f"trace-derived {derived!r} beyond 1e-9")
        vdd = annotations.get("vdd")
        if vdd is not None and v_min >= vdd:
            fail(f"{path}: post-warmup v_min {v_min} is not below the "
                 f"supply {vdd} — no IR drop under load is unphysical")

    thermal = signals.get("die_temp_c")
    if thermal is not None and thermal["samples"]:
        temps = thermal["samples"]
        lo = min(temps[0], temps[-1]) - 1.0
        hi = max(temps[0], temps[-1]) + 1.0
        for i, temp in enumerate(temps):
            if not lo <= temp <= hi:
                fail(f"{path}: die_temp_c sample {i} ({temp}) "
                     f"overshoots the transient endpoints "
                     f"[{temps[0]}, {temps[-1]}]")

    ipc_wave = signals.get("interval_ipc")
    if ipc_wave is not None:
        for i, value in enumerate(ipc_wave["samples"]):
            if not 0.0 <= value <= 64.0:
                fail(f"{path}: interval_ipc sample {i} ({value}) "
                     f"outside [0, 64]")

    for kind, index, time_s in marks:
        if kind not in ("l1_miss", "l2_miss", "mispredict"):
            fail(f"{path}: unknown mark kind '{kind}'")
        if index < 0 or time_s < 0:
            fail(f"{path}: mark {kind} has negative index/time")


def check_json_twin(csv_path, annotations, signals, marks):
    json_path = os.path.splitext(csv_path)[0] + ".json"
    if not os.path.exists(json_path):
        fail(f"{csv_path} has no JSON twin {json_path}")
    try:
        with open(json_path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{json_path} invalid: {err}")
    if doc.get("version") != 1:
        fail(f"{json_path}: version != 1")
    if doc.get("annotations") != annotations:
        fail(f"{json_path}: annotations disagree with the CSV")
    json_signals = {s["name"]: s for s in doc.get("signals", [])}
    if set(json_signals) != set(signals):
        fail(f"{json_path}: signal set disagrees with the CSV: "
             f"{sorted(json_signals)} vs {sorted(signals)}")
    for name, sig in signals.items():
        if json_signals[name]["samples"] != sig["samples"]:
            fail(f"{json_path}: signal '{name}' samples disagree with "
                 f"the CSV")
    if len(doc.get("marks", [])) != len(marks):
        fail(f"{json_path}: mark count disagrees with the CSV")


def check_spectrum(csv_path):
    spectrum_path = os.path.splitext(csv_path)[0] + "_spectrum.csv"
    if not os.path.exists(spectrum_path):
        return
    with open(spectrum_path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines or lines[0] != "# gest-spectrum v1":
        fail(f"{spectrum_path} lacks the spectrum version header")
    if len(lines) < 4 or not lines[1].startswith("# resonance_hz "):
        fail(f"{spectrum_path} lacks the resonance header")
    if lines[2] != "frequency_hz,amplitude_a":
        fail(f"{spectrum_path} lacks the column header")
    last_freq = 0.0
    for lineno, line in enumerate(lines[3:], start=4):
        freq_text, _, amp_text = line.partition(",")
        freq, amp = float(freq_text), float(amp_text)
        if freq <= last_freq:
            fail(f"{spectrum_path}:{lineno}: frequencies not "
                 f"strictly ascending")
        if amp < 0 or not math.isfinite(amp):
            fail(f"{spectrum_path}:{lineno}: bad amplitude {amp_text}")
        last_freq = freq


def validate_file(path):
    annotations, signals, marks = parse_csv(path)
    if not signals:
        fail(f"{path} declares no signals")
    check_physics(path, annotations, signals, marks)
    check_json_twin(path, annotations, signals, marks)
    check_spectrum(path)
    total = sum(len(s["samples"]) for s in signals.values())
    print(f"check_waveforms: OK: {path}: {len(signals)} signals, "
          f"{total} samples, {len(marks)} marks, "
          f"{len(annotations)} annotations")
    return annotations


def validate_index(directory):
    index_path = os.path.join(directory, "index.csv")
    if not os.path.exists(index_path):
        fail(f"{directory} has no index.csv")
    with open(index_path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines or lines[0] != "# gest-waveform-index v1":
        fail(f"{index_path} lacks the index version header")
    if len(lines) < 2 or lines[1] != \
            "rank,id,generation,fitness,csv,json,spectrum":
        fail(f"{index_path} lacks the column header")
    rows = []
    for lineno, line in enumerate(lines[2:], start=3):
        parts = line.split(",")
        if len(parts) != 7:
            fail(f"{index_path}:{lineno}: expected 7 columns: {line}")
        rank, _, _, fitness = (int(parts[0]), parts[1], parts[2],
                               float(parts[3]))
        for ref in (parts[4], parts[5], parts[6]):
            if ref and not os.path.exists(os.path.join(directory, ref)):
                fail(f"{index_path}:{lineno}: referenced file {ref} "
                     f"does not exist")
        rows.append((rank, fitness, parts[3]))
    for (rank_a, fit_a, _), (rank_b, fit_b, _) in zip(rows, rows[1:]):
        if rank_b != rank_a + 1:
            fail(f"{index_path}: ranks not consecutive")
        if fit_b > fit_a:
            fail(f"{index_path}: fitness increases from rank {rank_a} "
                 f"({fit_a}) to {rank_b} ({fit_b})")
    if not rows:
        fail(f"{index_path} lists no captures")
    return rows


def validate_dir(directory):
    rows = validate_index(directory)
    champion_fitness = None
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".csv") or name == "index.csv" or \
                name.endswith("_spectrum.csv"):
            continue
        annotations = validate_file(os.path.join(directory, name))
        if champion_fitness is None:
            champion_fitness = annotations
    print(f"check_waveforms: OK: {directory}: index lists "
          f"{len(rows)} captures, champion fitness {rows[0][2]}")
    return rows


def drive(gest_binary):
    global ARTIFACT_SRC
    # The child runs with cwd inside the scratch dir; keep a relative
    # binary path working.
    gest_binary = os.path.abspath(gest_binary)
    with tempfile.TemporaryDirectory(prefix="gest-waveforms-") as work:
        ARTIFACT_SRC = work
        config = os.path.join(work, "config.xml")
        with open(config, "w", encoding="utf-8") as handle:
            handle.write(DRIVE_CONFIG)
        result = subprocess.run(
            [gest_binary, "run", config, "--quiet"],
            cwd=work, capture_output=True, text=True)
        if result.returncode != 0:
            fail(f"gest run failed ({result.returncode}):\n"
                 f"{result.stdout}{result.stderr}")
        out = os.path.join(work, "out")
        rows = validate_dir(os.path.join(out, "waveforms"))

        result = subprocess.run(
            [gest_binary, "probe", config, out, "--quiet"],
            cwd=work, capture_output=True, text=True)
        if result.returncode != 0:
            fail(f"gest probe failed ({result.returncode}):\n"
                 f"{result.stdout}{result.stderr}")
        probe_dir = os.path.join(out, "probe")
        probe_csvs = [name for name in sorted(os.listdir(probe_dir))
                      if name.endswith(".csv") and
                      not name.endswith("_spectrum.csv")]
        if len(probe_csvs) != 1:
            fail(f"expected one probe capture in {probe_dir}, found "
                 f"{probe_csvs}")
        annotations = validate_file(
            os.path.join(probe_dir, probe_csvs[0]))

        # Determinism across capture paths: the probe re-measures the
        # run's champion, so its peak-to-peak voltage must equal the
        # fitness the GA recorded for it, bit-for-bit within 1e-9.
        champion_fitness = rows[0][1]
        if abs(annotations["peak_to_peak_v"] - champion_fitness) > \
                TOLERANCE:
            fail(f"probe peak_to_peak_v "
                 f"{annotations['peak_to_peak_v']!r} disagrees with "
                 f"the champion fitness {champion_fitness!r}")
        print("check_waveforms: OK: probe capture matches the "
              "champion fitness")
        ARTIFACT_SRC = None


def main(argv):
    if len(argv) == 3 and argv[1] == "--drive":
        drive(argv[2])
        return 0
    if len(argv) == 2 and not argv[1].startswith("-"):
        if os.path.isdir(argv[1]):
            validate_dir(argv[1])
        else:
            validate_file(argv[1])
        return 0
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
