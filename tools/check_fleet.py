#!/usr/bin/env python3
"""Validate the cross-run observability surface: registry + alerts.

Standalone mode schema-checks a workspace's sealed index and every
run's alerts ledger (docs/fleet.md):

  * registry.csv opens with `# gest-registry v1`, a column header, and
    column-complete rows; registry.json is valid JSON with the same
    run set;
  * every <run>/alerts.csv opens with `# gest-alerts v1` and carries
    well-typed rows (int generation, known severity, float
    value/threshold, comma-free message).

Drive mode builds a three-run workspace end to end and checks the
whole chain:

  * two same-seed, same-config runs (sealed) plus one provenance-off
    run with the health watchdog armed and a hair-trigger plateau rule
    (unsealed) — `gest runs` must index all three with the right
    statuses;
  * the same-seed cohort must screen clean (`--baseline` exit 0, zero
    regression flags: identical trajectories give permutation p = 1);
  * the induced plateau must raise exactly one alert, visible in all
    four places: alerts.csv, /alerts while live, an `event: alert` SSE
    frame, and the `gest top --fleet` pane;
  * an SSE reconnect with Last-Event-ID must suppress already-seen
    generation frames but still redeliver the (keyless) alert frame;
  * a same-seed pair differing only in <output health="..."> must
    write byte-identical history.csv, lineage.csv and digests.csv —
    the watchdog is strictly observational.

Usage:
  check_fleet.py <workspace>              schema checks only
  check_fleet.py --drive <gest-binary>    full end-to-end drive

Exit status 0 when everything validates; 1 with a message otherwise.
On failure with GEST_CHECK_ARTIFACT_DIR set, the scratch directory is
copied there for post-mortem.
"""

import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

ARTIFACT_SRC = None  # set by drive(); copied out by fail() on failure

COHORT_CONFIG = """<?xml version="1.0"?>
<gest_configuration>
  <ga population_size="16" individual_size="16" generations="12"
      seed="7" threads="1" fitness_cache_size="32"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a15"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="out"/>
</gest_configuration>
"""

# health_plateau="3" trips on the first three-generation stall (all but
# certain within 200 generations); health_collapse_factor="0" disarms
# the only other rule wall-clock noise could trip on CI.
PLATEAU_CONFIG = """<?xml version="1.0"?>
<gest_configuration>
  <ga population_size="24" individual_size="24" generations="200"
      seed="13" threads="1" fitness_cache_size="64"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a15"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="out" listen="127.0.0.1:0" provenance="false"
          health="true" health_plateau="3"
          health_collapse_factor="0"/>
</gest_configuration>
"""

# Identical GA + seed, stats off (timing columns would differ between
# any two runs); only the health attribute differs between the pair.
IDENTITY_CONFIG = """<?xml version="1.0"?>
<gest_configuration>
  <ga population_size="12" individual_size="12" generations="8"
      seed="5" threads="1" fitness_cache_size="32"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a15"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="out" stats="false" health="{health}"/>
</gest_configuration>
"""

REGISTRY_COLUMNS = (
    "run,status,state,config_hash,seed,git_sha,measurement,fitness,"
    "created,generations,generations_completed,evaluations,"
    "best_fitness,best_id,alerts,listen,note")

ALERTS_COLUMNS = "generation,rule,severity,value,threshold,message"


def fail(message):
    if ARTIFACT_SRC is not None:
        dest = os.environ.get("GEST_CHECK_ARTIFACT_DIR")
        if dest:
            target = os.path.join(dest, "check_fleet")
            shutil.copytree(ARTIFACT_SRC, target, dirs_exist_ok=True)
            print(f"check_fleet: scratch copied to {target}",
                  file=sys.stderr)
    print(f"check_fleet: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


# ------------------------------------------------------ schema checks

def validate_registry_csv(text, where):
    lines = [line for line in text.splitlines() if line]
    if not lines or lines[0] != "# gest-registry v1":
        fail(f"{where}: missing '# gest-registry v1' header: "
             f"{lines[:1]!r}")
    if len(lines) < 2 or lines[1] != REGISTRY_COLUMNS:
        fail(f"{where}: unexpected column header: {lines[1:2]!r}")
    columns = len(REGISTRY_COLUMNS.split(","))
    rows = []
    for lineno, line in enumerate(lines[2:], 3):
        cells = line.split(",")
        if len(cells) != columns:
            fail(f"{where} line {lineno}: {len(cells)} fields, "
                 f"expected {columns}: {line!r}")
        if cells[1] not in ("sealed", "unsealed", "corrupt"):
            fail(f"{where} line {lineno}: bad status {cells[1]!r}")
        int(cells[14])  # alerts must be integral
        float(cells[12])  # best_fitness must parse
        rows.append(cells)
    return rows


def validate_registry_json(text, where):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        fail(f"{where} is not valid JSON: {err}")
    if doc.get("gest_registry_version") != 1:
        fail(f"{where}: gest_registry_version != 1: {doc!r}")
    if not isinstance(doc.get("runs"), list):
        fail(f"{where}: 'runs' is not an array")
    for row in doc["runs"]:
        for key in ("run", "status", "state", "config_hash", "seed",
                    "best_fitness", "alerts"):
            if key not in row:
                fail(f"{where}: run row lacks '{key}': {sorted(row)}")
    return doc["runs"]


def validate_alerts_csv(text, where):
    lines = [line for line in text.splitlines() if line]
    if not lines or lines[0] != "# gest-alerts v1":
        fail(f"{where}: missing '# gest-alerts v1' header")
    if len(lines) < 2 or lines[1] != ALERTS_COLUMNS:
        fail(f"{where}: unexpected column header: {lines[1:2]!r}")
    rows = []
    for lineno, line in enumerate(lines[2:], 3):
        cells = line.split(",")
        if len(cells) != 6:
            fail(f"{where} line {lineno}: {len(cells)} fields "
                 f"(messages are comma-free by contract): {line!r}")
        int(cells[0])
        if cells[2] not in ("warning", "critical"):
            fail(f"{where} line {lineno}: bad severity {cells[2]!r}")
        float(cells[3])
        float(cells[4])
        rows.append(cells)
    return rows


def validate_workspace(workspace):
    csv_path = os.path.join(workspace, "registry.csv")
    try:
        with open(csv_path, encoding="utf-8") as handle:
            csv_rows = validate_registry_csv(handle.read(), csv_path)
    except OSError as err:
        fail(f"cannot read {csv_path} (run `gest runs {workspace}` "
             f"first): {err}")
    json_path = os.path.join(workspace, "registry.json")
    try:
        with open(json_path, encoding="utf-8") as handle:
            json_rows = validate_registry_json(handle.read(), json_path)
    except OSError as err:
        fail(f"cannot read {json_path}: {err}")
    if len(csv_rows) != len(json_rows):
        fail(f"registry twins disagree: {len(csv_rows)} CSV rows vs "
             f"{len(json_rows)} JSON rows")
    alerts = 0
    for row in csv_rows:
        ledger = os.path.join(workspace, row[0], "alerts.csv")
        if os.path.exists(ledger):
            with open(ledger, encoding="utf-8") as handle:
                parsed = validate_alerts_csv(handle.read(), ledger)
            if len(parsed) != int(row[14]):
                fail(f"{ledger}: {len(parsed)} rows but the registry "
                     f"says {row[14]}")
            alerts += len(parsed)
    return len(csv_rows), alerts


# ------------------------------------------------------ drive helpers

def get(url, timeout=5):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, TimeoutError) as err:
        return None, str(err)


class SseReader(threading.Thread):
    """Drains /events over a raw socket until the server closes it."""

    def __init__(self, host, port, last_event_id=None):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.last_event_id = last_event_id
        self.raw = b""
        self.error = None

    def run(self):
        try:
            request = (f"GET /events HTTP/1.1\r\nHost: {self.host}\r\n"
                       "Connection: close\r\n")
            if self.last_event_id is not None:
                request += f"Last-Event-ID: {self.last_event_id}\r\n"
            request += "\r\n"
            with socket.create_connection(
                    (self.host, self.port), timeout=120) as conn:
                conn.sendall(request.encode())
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        return
                    self.raw += chunk
        except OSError as err:
            self.error = str(err)

    def blocks(self):
        text = self.raw.decode("utf-8", errors="replace")
        head, sep, body = text.partition("\r\n\r\n")
        if not sep:
            fail(f"SSE response has no header/body separator: "
                 f"{text[:200]!r}")
        out = []
        for block in body.split("\n\n"):
            block = block.strip("\n")
            if not block or block.startswith("retry:"):
                continue
            fields = {}
            for line in block.split("\n"):
                key, _, value = line.partition(":")
                fields[key] = value.strip()
            out.append(fields)
        return out


def run_gest(gest, args, cwd, what):
    done = subprocess.run([gest] + args, cwd=cwd, capture_output=True,
                          text=True)
    if done.returncode != 0:
        fail(f"{what}: gest {' '.join(args)} exited "
             f"{done.returncode}:\n{done.stdout}{done.stderr}")
    return done.stdout


def drive_cohort_run(gest, scratch, name):
    work = os.path.join(scratch, name + "_work")
    os.makedirs(work)
    config = os.path.join(work, "config.xml")
    with open(config, "w", encoding="utf-8") as handle:
        handle.write(COHORT_CONFIG)
    run_gest(gest, ["run", "config.xml", "--quiet"], work,
             f"cohort run {name}")
    return os.path.join(work, "out")


def drive_plateau_run(gest, scratch):
    """Run the health-armed config; scrape /alerts and SSE while live.

    Returns (run_dir, live_alert_rows, sse_blocks, resumed_blocks).
    """
    work = os.path.join(scratch, "plateau_work")
    os.makedirs(work)
    config = os.path.join(work, "config.xml")
    with open(config, "w", encoding="utf-8") as handle:
        handle.write(PLATEAU_CONFIG)
    process = subprocess.Popen(
        [gest, "run", "config.xml", "--quiet"], cwd=work,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        status_path = os.path.join(work, "out", "status.json")
        listen = None
        for _ in range(600):
            if process.poll() is not None:
                break
            try:
                with open(status_path, encoding="utf-8") as handle:
                    listen = json.load(handle).get("listen")
            except (OSError, json.JSONDecodeError):
                listen = None
            if listen:
                break
            time.sleep(0.05)
        if not listen:
            out, err = process.communicate(timeout=60)
            fail("no listen address appeared in status.json; gest "
                 f"exited {process.returncode}:\n{out}{err}")
        host, port = listen.rsplit(":", 1)

        sse = SseReader(host, int(port))
        sse.start()

        # Poll /alerts until the induced plateau surfaces.
        live_alerts = []
        for _ in range(2000):
            if process.poll() is not None:
                break
            code, body = get(f"http://{listen}/alerts", timeout=2)
            if code == 200:
                try:
                    live_alerts = json.loads(body)
                except json.JSONDecodeError as err:
                    fail(f"/alerts is not valid JSON: {err}: {body!r}")
                if live_alerts:
                    break
            time.sleep(0.025)
        if not live_alerts:
            process.communicate(timeout=120)
            fail("the induced plateau never surfaced on /alerts while "
                 "the run was live")

        # Last-Event-ID resume: a huge id suppresses every generation
        # frame, but the keyless alert frame must be redelivered.
        resumed = SseReader(host, int(port), last_event_id=10**6)
        resumed.start()

        out, err = process.communicate(timeout=300)
        if process.returncode != 0:
            fail(f"plateau run failed ({process.returncode}):\n"
                 f"{out}{err}")
        sse.join(timeout=60)
        resumed.join(timeout=60)
        if sse.error:
            fail(f"SSE read failed: {sse.error}")
        if resumed.error:
            fail(f"resumed SSE read failed: {resumed.error}")
        return (os.path.join(work, "out"), live_alerts, sse.blocks(),
                resumed.blocks())
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()


def check_observer_byte_identity(gest, scratch):
    """health on vs off: history/lineage/digests must be byte-equal."""
    outs = {}
    for health in ("false", "true"):
        work = os.path.join(scratch, f"identity_{health}")
        os.makedirs(work)
        config = os.path.join(work, "config.xml")
        with open(config, "w", encoding="utf-8") as handle:
            handle.write(IDENTITY_CONFIG.format(health=health))
        run_gest(gest, ["run", "config.xml", "--quiet"], work,
                 f"identity run health={health}")
        outs[health] = os.path.join(work, "out")
    for artifact in ("history.csv", "lineage.csv", "digests.csv"):
        paths = [os.path.join(outs[h], artifact)
                 for h in ("false", "true")]
        blobs = []
        for path in paths:
            try:
                with open(path, "rb") as handle:
                    blobs.append(handle.read())
            except OSError as err:
                fail(f"identity pair: cannot read {path}: {err}")
        if blobs[0] != blobs[1]:
            fail(f"{artifact} differs between health=false and "
                 "health=true — the watchdog must be strictly "
                 "observational")
    if not os.path.exists(os.path.join(outs["true"], "alerts.csv")):
        fail("health=true identity run left no alerts.csv (the eager "
             "header must prove the run was watched)")
    if os.path.exists(os.path.join(outs["false"], "alerts.csv")):
        fail("health=false identity run wrote an alerts.csv")
    print("check_fleet: OK: watchdog on/off artifacts byte-identical")


def drive(gest):
    global ARTIFACT_SRC
    gest = os.path.abspath(gest)
    with tempfile.TemporaryDirectory(prefix="gest-fleet-") as scratch:
        ARTIFACT_SRC = scratch
        workspace = os.path.join(scratch, "workspace")
        os.makedirs(workspace)

        # Two sealed same-seed/same-config runs + one unsealed
        # (provenance off) health-armed run.
        shutil.move(drive_cohort_run(gest, scratch, "run_a"),
                    os.path.join(workspace, "run_a"))
        shutil.move(drive_cohort_run(gest, scratch, "run_b"),
                    os.path.join(workspace, "run_b"))
        plateau_out, live_alerts, sse_blocks, resumed_blocks = \
            drive_plateau_run(gest, scratch)
        shutil.move(plateau_out, os.path.join(workspace, "run_c"))

        # The plateau raised exactly one alert, everywhere.
        if len(live_alerts) != 1:
            fail(f"/alerts carried {len(live_alerts)} alerts, "
                 f"expected exactly 1: {live_alerts!r}")
        if live_alerts[0].get("rule") != "fitness_plateau":
            fail(f"/alerts rule is not fitness_plateau: "
                 f"{live_alerts[0]!r}")
        ledger = os.path.join(workspace, "run_c", "alerts.csv")
        with open(ledger, encoding="utf-8") as handle:
            rows = validate_alerts_csv(handle.read(), ledger)
        if len(rows) != 1 or rows[0][1] != "fitness_plateau":
            fail(f"alerts.csv should hold exactly the plateau alert: "
                 f"{rows!r}")

        alert_frames = [b for b in sse_blocks
                        if b.get("event") == "alert"]
        if len(alert_frames) != 1:
            fail(f"SSE stream carried {len(alert_frames)} alert "
                 f"frames, expected exactly 1")
        if "id" in alert_frames[0]:
            fail("SSE alert frame carries an id — alerts must stay "
                 "keyless for at-least-once resume delivery")
        if json.loads(alert_frames[0]["data"]).get("rule") != \
                "fitness_plateau":
            fail(f"SSE alert payload is wrong: {alert_frames[0]!r}")

        # Resume with a huge Last-Event-ID: generation frames must be
        # suppressed, the keyless alert must be redelivered.
        resumed_gens = [b for b in resumed_blocks
                        if b.get("event") == "generation"]
        if resumed_gens:
            fail(f"resumed SSE replayed {len(resumed_gens)} generation "
                 "frames past Last-Event-ID")
        if not any(b.get("event") == "alert" for b in resumed_blocks):
            fail("resumed SSE did not redeliver the keyless alert "
                 "frame")

        # `gest runs` must index all three with the right statuses.
        runs_json = run_gest(gest, ["runs", workspace, "--json",
                                    "--quiet"], scratch, "gest runs")
        indexed = {row["run"]: row
                   for row in validate_registry_json(
                       runs_json, "gest runs --json")}
        if sorted(indexed) != ["run_a", "run_b", "run_c"]:
            fail(f"gest runs indexed {sorted(indexed)}")
        for name in ("run_a", "run_b"):
            if indexed[name]["status"] != "sealed":
                fail(f"{name} should index as sealed: {indexed[name]}")
        if indexed["run_c"]["status"] != "unsealed":
            fail(f"run_c (provenance off) should index as unsealed: "
                 f"{indexed['run_c']}")
        if indexed["run_c"]["alerts"] != 1:
            fail(f"run_c should carry 1 alert in the index: "
                 f"{indexed['run_c']}")
        if indexed["run_a"]["config_hash"] != \
                indexed["run_b"]["config_hash"]:
            fail("same-config runs got different config hashes")

        # Same-seed cohort screening: p = 1, no flags, exit 0.
        screening = json.loads(run_gest(
            gest, ["runs", workspace, "--baseline", "run_a", "--json",
                   "--quiet"], scratch, "gest runs --baseline"))
        if len(screening) != 1 or screening[0]["candidate"] != "run_b":
            fail(f"cohort should be exactly run_b: {screening!r}")
        if screening[0]["fitness_regression"] or \
                not screening[0]["same_seed"]:
            fail(f"same-seed twin flagged as regression: "
                 f"{screening[0]!r}")
        if screening[0]["fitness_p"] != 1.0:
            fail(f"identical trajectories must give p = 1: "
                 f"{screening[0]!r}")

        # The sealed index on disk validates, and the alert is counted.
        runs, alerts = validate_workspace(workspace)
        if runs != 3 or alerts != 1:
            fail(f"workspace index: {runs} runs / {alerts} alerts, "
                 "expected 3 / 1")

        # The fleet pane shows the run and its alert.
        pane = run_gest(gest, ["top", workspace, "--fleet", "--once",
                               "--quiet"], scratch, "gest top --fleet")
        if "run_c" not in pane:
            fail(f"fleet pane does not list run_c:\n{pane}")
        if "1 alert(s)" not in pane:
            fail(f"fleet pane does not count the alert:\n{pane}")

        check_observer_byte_identity(gest, scratch)
        print("check_fleet: OK: 3-run workspace indexed, cohort "
              "screened clean, plateau alert visible in alerts.csv, "
              "/alerts, SSE and the fleet pane")
        ARTIFACT_SRC = None


def main(argv):
    if len(argv) == 3 and argv[1] == "--drive":
        drive(argv[2])
        return 0
    if len(argv) == 2 and not argv[1].startswith("-"):
        runs, alerts = validate_workspace(argv[1])
        print(f"check_fleet: OK: {argv[1]}: {runs} runs indexed, "
              f"{alerts} alerts, schemas valid")
        return 0
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
