#!/usr/bin/env python3
"""Export a gest lineage ledger as a Graphviz dot graph.

Reads the `lineage.csv` a run records (one row per birth event: seed,
resumed, crossover, mutation, elite copy) and emits a digraph with one
node per individual and one edge per parent-child relationship, so the
full family tree of a GA run can be rendered with `dot -Tsvg`. Nodes
are colored by creating operator and labeled with id, birth generation
and fitness; the champion (highest fitness, earliest generation then
lowest id on ties) and its ancestry are outlined bold so the winning
line is visible in large graphs. `--champion-only` drops everything
else, which keeps graphs of long runs readable.

Usage:
  lineage_to_dot.py <run_dir|lineage.csv> [-o out.dot] [--champion-only]
  lineage_to_dot.py --drive <gest-binary>

--drive runs a tiny GA in a temp dir, polls status.json for well-formed
JSON while the run is live, then schema-validates the lineage.csv and
analytics.csv it wrote, checks the champion's ancestry reaches
generation 0, and round-trips the ledger through the dot exporter.
Exit status 0 on success; 1 with a message otherwise.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

ARTIFACT_SRC = None  # set by drive(); copied out by fail() on failure

LINEAGE_VERSION_PREFIX = "# gest-lineage v"
ANALYTICS_VERSION_PREFIX = "# gest-analytics v"

LINEAGE_COLUMNS = [
    "generation", "id", "op", "parent1", "parent2", "mutated_genes",
    "mutated_indices", "fitness",
]

ANALYTICS_COLUMNS = [
    "generation", "mix_short_int", "mix_long_int", "mix_float_simd",
    "mix_mem", "mix_branch", "mix_nop", "gene_entropy_bits",
    "pairwise_diversity", "fitness_min", "fitness_q1", "fitness_median",
    "fitness_q3", "fitness_max", "crossover_children",
    "crossover_improved", "mutation_children", "mutation_improved",
    "elite_copies",
]

OPS = ("seed", "resumed", "crossover", "mutation", "elite_copy")

OP_COLOR = {
    "seed": "lightblue",
    "resumed": "lightgrey",
    "crossover": "palegreen",
    "mutation": "gold",
    "elite_copy": "plum",
}

DRIVE_CONFIG = """<?xml version="1.0"?>
<gest_configuration>
  <ga population_size="10" individual_size="10" generations="6" seed="7"
      fitness_cache_size="64"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a15"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="out"/>
</gest_configuration>
"""


def fail(message):
    if ARTIFACT_SRC is not None:
        dest = os.environ.get("GEST_CHECK_ARTIFACT_DIR")
        if dest:
            target = os.path.join(dest, "check_lineage")
            shutil.copytree(ARTIFACT_SRC, target, dirs_exist_ok=True)
            print(f"lineage_to_dot: scratch copied to {target}",
                  file=sys.stderr)
    print(f"lineage_to_dot: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_lineage(path):
    """Parse and schema-validate a lineage.csv; returns event dicts."""
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        fail(f"cannot read {path}: {err}")

    if not lines or not lines[0].startswith(LINEAGE_VERSION_PREFIX):
        fail(f"{path} lacks the '{LINEAGE_VERSION_PREFIX}N' version "
             "comment on line 1")
    header = None
    events = []
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if header is None:
            header = fields
            missing = [c for c in LINEAGE_COLUMNS if c not in header]
            if missing:
                fail(f"{path} header lacks columns {missing}")
            continue
        if len(fields) < len(header):
            fail(f"{path} line {number} is truncated "
                 f"({len(fields)} of {len(header)} columns)")
        row = dict(zip(header, fields))
        try:
            event = {
                "generation": int(row["generation"]),
                "id": int(row["id"]),
                "op": row["op"],
                "parent1": int(row["parent1"]),
                "parent2": int(row["parent2"]),
                "mutated_genes": int(row["mutated_genes"]),
                "mutated_indices": [
                    int(g) for g in row["mutated_indices"].split(";")
                    if g],
                "fitness": float(row["fitness"]),
            }
        except ValueError as err:
            fail(f"{path} line {number}: {err}")
        if event["op"] not in OPS:
            fail(f"{path} line {number}: unknown op {event['op']!r}")
        if event["generation"] < 0 or event["id"] <= 0:
            fail(f"{path} line {number}: bad generation/id")
        if event["mutated_genes"] != len(event["mutated_indices"]):
            fail(f"{path} line {number}: mutated_genes="
                 f"{event['mutated_genes']} but "
                 f"{len(event['mutated_indices'])} indices listed")
        events.append(event)
    if header is None:
        fail(f"{path} has no header row")
    if not events:
        fail(f"{path} has no birth events — the run has not completed "
             "generation 0 yet")
    return events


def champion_ancestry(events):
    """Ids of the champion and every known ancestor (births only)."""
    birth = {}
    for event in events:
        birth.setdefault(event["id"], event)
    champ = max(
        events,
        key=lambda e: (e["fitness"], -e["generation"], -e["id"]))
    keep = set()
    queue = [champ["id"]]
    while queue:
        ident = queue.pop()
        if ident in keep or ident not in birth:
            continue
        keep.add(ident)
        event = birth[ident]
        if event["op"] in ("seed", "resumed"):
            continue
        for parent in (event["parent1"], event["parent2"]):
            if parent:
                queue.append(parent)
    return champ["id"], keep


def to_dot(events, champion_only=False):
    birth = {}
    for event in events:
        birth.setdefault(event["id"], event)
    champ_id, ancestry = champion_ancestry(events)

    out = ["digraph lineage {"]
    out.append('  rankdir=TB; node [shape=box, style=filled, '
               'fontname="monospace"];')
    for ident, event in sorted(birth.items()):
        if champion_only and ident not in ancestry:
            continue
        label = (f"id {ident}\\ngen {event['generation']} "
                 f"{event['op']}\\nfit {event['fitness']:.4f}")
        attrs = [f'label="{label}"',
                 f'fillcolor="{OP_COLOR[event["op"]]}"']
        if ident in ancestry:
            attrs.append("penwidth=2.5")
        if ident == champ_id:
            attrs.append('color="red"')
        out.append(f'  n{ident} [{", ".join(attrs)}];')
    for ident, event in sorted(birth.items()):
        if champion_only and ident not in ancestry:
            continue
        if event["op"] in ("seed", "resumed"):
            continue
        parents = {event["parent1"], event["parent2"]}
        for parent in sorted(parents):
            if parent == 0 or parent == ident:
                continue
            if champion_only and parent not in ancestry:
                continue
            if parent not in birth:
                # Resumed runs reference pre-ledger ancestors; show a
                # dashed stub so the cut is visible rather than silent.
                out.append(f'  n{parent} [label="id {parent}\\n'
                           '(before ledger)", fillcolor="white", '
                           'style="filled,dashed"];')
            out.append(f"  n{parent} -> n{ident};")
    out.append("}")
    return "\n".join(out) + "\n"


def check_dot(text, events):
    """Sanity-check generated dot output (used by --drive)."""
    if not text.startswith("digraph lineage {"):
        fail("dot output does not start with 'digraph lineage {'")
    if text.count("{") != text.count("}"):
        fail("dot output has unbalanced braces")
    ids = {e["id"] for e in events}
    nodes = sum(1 for line in text.splitlines()
                if line.strip().startswith("n") and "[" in line)
    if nodes < len(ids):
        fail(f"dot output has {nodes} nodes for {len(ids)} individuals")


def validate_analytics(path):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    if not lines or not lines[0].startswith(ANALYTICS_VERSION_PREFIX):
        fail(f"{path} lacks the '{ANALYTICS_VERSION_PREFIX}N' version "
             "comment on line 1")
    header = None
    rows = 0
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if header is None:
            header = fields
            missing = [c for c in ANALYTICS_COLUMNS if c not in header]
            if missing:
                fail(f"{path} header lacks columns {missing}")
            continue
        if len(fields) < len(header):
            fail(f"{path} line {number} is truncated")
        row = dict(zip(header, fields))
        try:
            mix = [int(row[c]) for c in ANALYTICS_COLUMNS[1:7]]
            diversity = float(row["pairwise_diversity"])
            quartiles = [float(row[c]) for c in (
                "fitness_min", "fitness_q1", "fitness_median",
                "fitness_q3", "fitness_max")]
        except ValueError as err:
            fail(f"{path} line {number}: {err}")
        if any(m < 0 for m in mix):
            fail(f"{path} line {number}: negative mix count")
        if not 0.0 <= diversity <= 1.0:
            fail(f"{path} line {number}: pairwise_diversity "
                 f"{diversity} outside [0, 1]")
        if any(a > b + 1e-9 for a, b in zip(quartiles, quartiles[1:])):
            fail(f"{path} line {number}: fitness quartiles not "
                 f"monotonic: {quartiles}")
        rows += 1
    if rows == 0:
        fail(f"{path} has no rows")
    return rows


def check_status(path, require_completed=False):
    """status.json must be well-formed JSON at *every* read."""
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        return None  # not written yet — fine while polling
    except (OSError, json.JSONDecodeError) as err:
        fail(f"status.json torn or invalid: {err}")
    for key in ("state", "generation", "total_generations",
                "best_fitness", "average_fitness", "diversity",
                "evaluations", "cache_hit_rate", "evals_per_sec",
                "eta_seconds"):
        if key not in doc:
            fail(f"status.json lacks '{key}': {doc}")
    if doc["state"] not in ("running", "completed"):
        fail(f"status.json has unexpected state {doc['state']!r}")
    if require_completed and doc["state"] != "completed":
        fail(f"final status.json state is {doc['state']!r}, "
             "expected 'completed'")
    return doc


def drive(gest_binary):
    global ARTIFACT_SRC
    gest_binary = os.path.abspath(gest_binary)
    with tempfile.TemporaryDirectory(prefix="gest-lineage-") as work:
        ARTIFACT_SRC = work
        config = os.path.join(work, "config.xml")
        with open(config, "w", encoding="utf-8") as handle:
            handle.write(DRIVE_CONFIG)
        out = os.path.join(work, "out")
        status = os.path.join(out, "status.json")

        # Poll status.json while the run is live: the atomic replace
        # must never expose a torn file to a concurrent reader.
        proc = subprocess.Popen(
            [gest_binary, "run", config, "--quiet"], cwd=work,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        polls = 0
        while proc.poll() is None:
            if check_status(status) is not None:
                polls += 1
            time.sleep(0.001)
        stdout, stderr = proc.communicate()
        if proc.returncode != 0:
            fail(f"gest run failed ({proc.returncode}):\n"
                 f"{stdout}{stderr}")
        final = check_status(status, require_completed=True)
        if final is None:
            fail("run completed without writing status.json")
        print(f"lineage_to_dot: OK: status.json valid on {polls} live "
              f"polls; final state '{final['state']}', generation "
              f"{final['generation']}/{final['total_generations'] - 1}")

        events = parse_lineage(os.path.join(out, "lineage.csv"))
        generations = {e["generation"] for e in events}
        expected = set(range(final["total_generations"]))
        if generations != expected:
            fail(f"lineage.csv covers generations {sorted(generations)},"
                 f" expected {sorted(expected)}")

        # The champion's ancestry must close: every chased parent known,
        # every terminal a generation-0 seed.
        champ_id, ancestry = champion_ancestry(events)
        birth = {}
        for event in events:
            birth.setdefault(event["id"], event)
        for ident in ancestry:
            event = birth[ident]
            if event["op"] in ("seed", "resumed"):
                if event["generation"] != 0:
                    fail(f"ancestor {ident} is a {event['op']} born at "
                         f"generation {event['generation']}, not 0")
                continue
            for parent in (event["parent1"], event["parent2"]):
                if parent and parent not in birth:
                    fail(f"ancestor {ident} references unknown parent "
                         f"{parent} in a non-resumed run")
        roots = sum(1 for i in ancestry
                    if birth[i]["op"] in ("seed", "resumed"))
        if roots == 0:
            fail("champion ancestry has no generation-0 root")
        print(f"lineage_to_dot: OK: lineage.csv has {len(events)} birth "
              f"events; champion id {champ_id} closes over "
              f"{len(ancestry)} ancestors down to {roots} seed(s)")

        rows = validate_analytics(os.path.join(out, "analytics.csv"))
        if rows != final["total_generations"]:
            fail(f"analytics.csv has {rows} rows, expected "
                 f"{final['total_generations']}")
        print(f"lineage_to_dot: OK: analytics.csv has {rows} "
              "schema-valid rows")

        for champion_only in (False, True):
            dot = to_dot(events, champion_only=champion_only)
            check_dot(dot, events if not champion_only else
                      [e for e in events if e["id"] in ancestry])
        print("lineage_to_dot: OK: dot export is well-formed "
              "(full and --champion-only)")
        ARTIFACT_SRC = None


def main(argv):
    if len(argv) == 3 and argv[1] == "--drive":
        drive(argv[2])
        return 0
    args = [a for a in argv[1:] if not a.startswith("-")]
    champion_only = "--champion-only" in argv
    out_path = None
    if "-o" in argv:
        index = argv.index("-o")
        if index + 1 >= len(argv):
            fail("-o requires a file name")
        out_path = argv[index + 1]
        args = [a for a in args if a != out_path]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = args[0]
    if os.path.isdir(path):
        path = os.path.join(path, "lineage.csv")
    dot = to_dot(parse_lineage(path), champion_only=champion_only)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(dot)
    else:
        sys.stdout.write(dot)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
