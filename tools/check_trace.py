#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by gest.

Checks the subset of the trace-event format that gest emits, so a trace
accepted here loads in chrome://tracing and https://ui.perfetto.dev:

  * the file is valid JSON with a "traceEvents" list;
  * complete events (ph "X") carry name/cat/pid/tid, a numeric ts and a
    non-negative dur;
  * instant events (ph "i") carry name/pid/tid/ts;
  * metadata events (ph "M") are process_name/thread_name with an
    args.name string;
  * every event's tid has a thread_name metadata record;
  * complete events on the same tid do not partially overlap (trace
    viewers require proper nesting per thread);
  * per tid, end timestamps (ts + dur) are non-decreasing in file
    order: each thread emits a complete event when it finishes, so a
    decreasing end time means reordered or corrupted emission (start
    timestamps may legitimately decrease — a nested inner span is
    emitted before its enclosing outer span).

Usage:
  check_trace.py <trace.json>            validate an existing trace
  check_trace.py --drive <gest-binary>   run a tiny GA with --trace in a
                                         temp dir, then validate the
                                         trace and metrics.json it wrote

Exit status 0 when the trace is valid; 1 with a message otherwise.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

ARTIFACT_SRC = None  # set by drive(); copied out by fail() on failure

DRIVE_CONFIG = """<?xml version="1.0"?>
<gest_configuration>
  <ga population_size="8" individual_size="8" generations="3" seed="11"
      threads="2" fitness_cache_size="32"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a15"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="out"/>
</gest_configuration>
"""


def fail(message):
    if ARTIFACT_SRC is not None:
        dest = os.environ.get("GEST_CHECK_ARTIFACT_DIR")
        if dest:
            target = os.path.join(dest, "check_trace")
            shutil.copytree(ARTIFACT_SRC, target, dirs_exist_ok=True)
            print(f"check_trace: scratch copied to {target}",
                  file=sys.stderr)
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_common(event, index, phase):
    for key in ("name", "pid", "tid"):
        if key not in event:
            fail(f"event {index} (ph '{phase}') lacks '{key}': {event}")
    if not isinstance(event["name"], str) or not event["name"]:
        fail(f"event {index} has a non-string or empty name")
    if not isinstance(event["ts"], (int, float)):
        fail(f"event {index} has non-numeric ts {event.get('ts')!r}")
    if event["ts"] < 0:
        fail(f"event {index} has negative ts {event['ts']}")


def validate(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{path} is not valid JSON: {err}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path} lacks a traceEvents object")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")
    if not events:
        fail("traceEvents is empty")

    named_tids = set()
    spans_by_tid = {}
    last_end_by_tid = {}
    counts = {"X": 0, "i": 0, "M": 0}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event {index} is not an object")
        phase = event.get("ph")
        if phase not in counts:
            fail(f"event {index} has unexpected ph {phase!r}")
        counts[phase] += 1
        if phase == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                fail(f"metadata event {index} has unexpected name "
                     f"{event.get('name')!r}")
            args = event.get("args", {})
            if not isinstance(args.get("name"), str):
                fail(f"metadata event {index} lacks args.name")
            if event["name"] == "thread_name":
                named_tids.add(event.get("tid"))
            continue
        check_common(event, index, phase)
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"complete event {index} has bad dur {dur!r}")
            spans_by_tid.setdefault(event["tid"], []).append(
                (event["ts"], event["ts"] + dur, index))
            # A thread emits each complete event at its end, so in file
            # order the end times of one tid never go backwards even
            # though start times may (inner spans precede outer ones).
            tid, end = event["tid"], event["ts"] + dur
            prev = last_end_by_tid.get(tid)
            if prev is not None and end < prev[0]:
                fail(f"event {index} (tid {tid}) ends at {end}, before "
                     f"event {prev[1]} on the same tid ended at "
                     f"{prev[0]}: per-tid end timestamps must be "
                     "non-decreasing in file order (events emitted out "
                     "of completion order, or ts/dur corrupted)")
            last_end_by_tid[tid] = (end, index)

    if counts["X"] == 0:
        fail("no complete ('X') events — nothing to display")

    used_tids = {e["tid"] for e in events if e.get("ph") != "M"}
    unnamed = used_tids - named_tids
    if unnamed:
        fail(f"tids {sorted(unnamed)} have events but no thread_name "
             "metadata")

    # Spans on one thread must nest: sorted by start, each span either
    # contains the next or ends before it starts.
    for tid, spans in spans_by_tid.items():
        spans.sort()
        stack = []
        for start, end, index in spans:
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(f"event {index} (tid {tid}) partially overlaps "
                     f"event {stack[-1][2]}: [{start}, {end}) vs "
                     f"[{stack[-1][0]}, {stack[-1][1]})")
            stack.append((start, end, index))

    print(f"check_trace: OK: {path}: {counts['X']} complete, "
          f"{counts['i']} instant, {counts['M']} metadata events on "
          f"{len(used_tids)} threads")


def drive(gest_binary):
    global ARTIFACT_SRC
    # The run executes with cwd inside the scratch dir; a relative
    # binary path (e.g. build/tools/gest) must survive the chdir.
    gest_binary = os.path.abspath(gest_binary)
    with tempfile.TemporaryDirectory(prefix="gest-trace-") as work:
        ARTIFACT_SRC = work
        config = os.path.join(work, "config.xml")
        with open(config, "w", encoding="utf-8") as handle:
            handle.write(DRIVE_CONFIG)
        result = subprocess.run(
            [gest_binary, "run", config, "--trace", "--quiet"],
            cwd=work, capture_output=True, text=True)
        if result.returncode != 0:
            fail(f"gest run failed ({result.returncode}):\n"
                 f"{result.stdout}{result.stderr}")
        out = os.path.join(work, "out")
        validate(os.path.join(out, "trace.json"))
        metrics = os.path.join(out, "metrics.json")
        try:
            with open(metrics, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            fail(f"metrics.json invalid: {err}")
        for section in ("counters", "gauges", "histograms"):
            if section not in doc:
                fail(f"metrics.json lacks '{section}'")
        if doc["counters"].get("engine.generations") != 3:
            fail("metrics.json engine.generations != 3: "
                 f"{doc['counters'].get('engine.generations')!r}")
        print(f"check_trace: OK: metrics.json has "
              f"{len(doc['counters'])} counters, "
              f"{len(doc['histograms'])} histograms")
        ARTIFACT_SRC = None


def main(argv):
    if len(argv) == 3 and argv[1] == "--drive":
        drive(argv[2])
        return 0
    if len(argv) == 2 and not argv[1].startswith("-"):
        validate(argv[1])
        return 0
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
