#!/usr/bin/env python3
"""End-to-end validator for gest's provenance + replay-verification layer.

Static mode checks a sealed run directory's provenance artifacts:

  * manifest.json parses, carries the v1 schema, a 64-hex config hash,
    the RNG seed/generator and one checksum entry per artifact;
  * every checksummed artifact exists with its recorded SHA-256;
  * digests.csv carries the `# gest-digests v1` header and one 64-hex
    population digest per recorded generation.

Drive mode exercises the whole audit loop against a gest binary:

  1. run a tiny deterministic GA and `gest verify` the sealed run
     (full replay and --quick must both exit 0);
  2. flip one byte of lineage.csv — verify must now fail naming
     exactly that artifact — then restore it;
  3. rewrite the manifest's seed — a full verify must fail naming the
     first divergent generation (generation 0) — then restore it;
  4. run the same configuration+seed into a second directory and
     `gest compare --json` the two: zero significant deltas.

Usage:
  check_repro.py <run_dir>              validate sealed artifacts
  check_repro.py --drive <gest-binary>  full run/verify/tamper/compare
                                        loop in a scratch directory

With GEST_CHECK_ARTIFACT_DIR set, --drive copies its scratch directory
there before exiting on failure, so CI can upload it.

Exit status 0 when everything holds; 1 with a message otherwise.
"""

import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile

DRIVE_CONFIG = """<?xml version="1.0"?>
<gest_configuration>
  <ga population_size="8" individual_size="8" generations="4" seed="23"
      fitness_cache_size="64"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a15"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="{out}"/>
</gest_configuration>
"""

ARTIFACT_SRC = None  # set by drive(); copied out by fail() on failure


def fail(message):
    if ARTIFACT_SRC is not None:
        dest = os.environ.get("GEST_CHECK_ARTIFACT_DIR")
        if dest:
            target = os.path.join(dest, "check_repro")
            shutil.copytree(ARTIFACT_SRC, target, dirs_exist_ok=True)
            print(f"check_repro: scratch copied to {target}",
                  file=sys.stderr)
    print(f"check_repro: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def sha256_of(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


def is_hex_digest(text):
    return len(text) == 64 and all(c in "0123456789abcdef" for c in text)


def validate_run(run_dir):
    manifest_path = os.path.join(run_dir, "manifest.json")
    if not os.path.isfile(manifest_path):
        fail(f"no manifest.json in {run_dir}")
    with open(manifest_path, encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except json.JSONDecodeError as err:
            fail(f"manifest.json is not valid JSON: {err}")

    version = manifest.get("gest_manifest_version")
    if version != 1:
        fail(f"unsupported gest_manifest_version {version!r}")
    config = manifest.get("config", {})
    if not is_hex_digest(config.get("hash", "")):
        fail(f"config.hash is not a SHA-256 hex digest: "
             f"{config.get('hash')!r}")
    rng = manifest.get("rng", {})
    if "seed" in rng and not str(rng["seed"]).isdigit():
        fail(f"rng.seed is not an unsigned integer: {rng['seed']!r}")
    if not rng.get("generator"):
        fail("rng.generator is missing or empty")

    artifacts = manifest.get("artifacts")
    if not isinstance(artifacts, list) or not artifacts:
        fail("manifest carries no artifact checksums")
    for entry in artifacts:
        rel = entry.get("path", "")
        recorded = entry.get("sha256", "")
        if not rel or not is_hex_digest(recorded):
            fail(f"malformed artifact entry: {entry!r}")
        path = os.path.join(run_dir, rel)
        if not os.path.isfile(path):
            fail(f"checksummed artifact {rel} is missing")
        actual = sha256_of(path)
        if actual != recorded:
            fail(f"artifact {rel}: recorded sha256 {recorded[:12]}… "
                 f"but file hashes {actual[:12]}…")
        if entry.get("bytes") != os.path.getsize(path):
            fail(f"artifact {rel}: recorded {entry.get('bytes')} bytes "
                 f"but file holds {os.path.getsize(path)}")

    digests_path = os.path.join(run_dir, "digests.csv")
    if not os.path.isfile(digests_path):
        fail(f"no digests.csv in {run_dir}")
    with open(digests_path, encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle]
    if not lines or not lines[0].startswith("# gest-digests v1"):
        fail("digests.csv lacks the `# gest-digests v1` header")
    rows = [line for line in lines[1:]
            if line and not line.startswith("#") and
            not line.startswith("generation,")]
    expected = manifest.get("result", {}).get("digests_sealed")
    if expected is not None and expected != len(rows):
        fail(f"manifest records {expected} sealed digests but "
             f"digests.csv holds {len(rows)} rows")
    for line in rows:
        fields = line.split(",")
        if len(fields) != 3 or not is_hex_digest(fields[2]):
            fail(f"malformed digests.csv row: {line!r}")
    print(f"check_repro: OK: {len(artifacts)} artifacts verified, "
          f"{len(rows)} population digests well-formed")
    return len(rows)


def run_gest(args, cwd, expect=0, what=""):
    result = subprocess.run(args, cwd=cwd, capture_output=True,
                            text=True)
    if expect is not None and result.returncode != expect:
        fail(f"{what or ' '.join(args)} exited {result.returncode}, "
             f"expected {expect}:\n{result.stdout}{result.stderr}")
    return result


def drive(gest_binary):
    global ARTIFACT_SRC
    gest_binary = os.path.abspath(gest_binary)
    with tempfile.TemporaryDirectory(prefix="gest-repro-") as work:
        ARTIFACT_SRC = work
        config = os.path.join(work, "config.xml")
        with open(config, "w", encoding="utf-8") as handle:
            handle.write(DRIVE_CONFIG.format(out="runA"))
        run_gest([gest_binary, "run", config, "--quiet"], work,
                 what="gest run")
        run_a = os.path.join(work, "runA")
        validate_run(run_a)

        # 1. An untampered deterministic run verifies, fully and
        # quickly.
        run_gest([gest_binary, "verify", run_a, "--quiet"], work,
                 what="gest verify (untampered)")
        run_gest([gest_binary, "verify", run_a, "--quick", "--quiet"],
                 work, what="gest verify --quick (untampered)")

        # 2. Flip one byte of lineage.csv: verify must fail and name
        # the artifact.
        lineage = os.path.join(run_a, "lineage.csv")
        original = open(lineage, "rb").read()
        tampered = bytearray(original)
        tampered[len(tampered) // 2] ^= 0x01
        with open(lineage, "wb") as handle:
            handle.write(bytes(tampered))
        result = run_gest([gest_binary, "verify", run_a, "--quiet"],
                          work, expect=1,
                          what="gest verify (tampered lineage)")
        if "lineage.csv" not in result.stdout:
            fail(f"tampered-lineage verify does not name lineage.csv:\n"
                 f"{result.stdout}")
        with open(lineage, "wb") as handle:
            handle.write(original)

        # 3. Rewrite the manifest's seed: the replay must diverge at
        # generation 0.
        manifest_path = os.path.join(run_a, "manifest.json")
        manifest_text = open(manifest_path, encoding="utf-8").read()
        if '"seed": "23"' not in manifest_text:
            fail("manifest does not record the expected seed 23")
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write(
                manifest_text.replace('"seed": "23"', '"seed": "24"'))
        result = run_gest([gest_binary, "verify", run_a, "--quiet"],
                          work, expect=1,
                          what="gest verify (seed drift)")
        if "generation 0" not in result.stdout:
            fail(f"seed-drift verify does not name the first divergent "
                 f"generation:\n{result.stdout}")
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write(manifest_text)
        run_gest([gest_binary, "verify", run_a, "--quiet"], work,
                 what="gest verify (restored)")

        # 4. Same configuration + seed into a second directory: compare
        # must report zero significant deltas.
        config_b = os.path.join(work, "config_b.xml")
        with open(config_b, "w", encoding="utf-8") as handle:
            handle.write(DRIVE_CONFIG.format(out="runB"))
        run_gest([gest_binary, "run", config_b, "--quiet"], work,
                 what="gest run (second)")
        run_b = os.path.join(work, "runB")
        result = run_gest(
            [gest_binary, "compare", run_a, run_b, "--json", "--quiet"],
            work, what="gest compare")
        try:
            report = json.loads(result.stdout)
        except json.JSONDecodeError as err:
            fail(f"gest compare --json output is not valid JSON: {err}\n"
                 f"{result.stdout}")
        comparisons = report.get("comparisons", [])
        if len(comparisons) != 1:
            fail(f"expected one comparison, got {len(comparisons)}")
        deltas = comparisons[0].get("significant_deltas")
        if deltas != 0:
            fail(f"same-seed runs report {deltas} significant deltas:\n"
                 f"{result.stdout}")
        print("check_repro: OK: verify catches tampering and seed "
              "drift; same-seed compare reports zero deltas")
        ARTIFACT_SRC = None


def main(argv):
    if len(argv) == 3 and argv[1] == "--drive":
        drive(argv[2])
        return 0
    if len(argv) == 2 and not argv[1].startswith("-"):
        validate_run(argv[1])
        return 0
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
