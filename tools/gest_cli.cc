/**
 * @file
 * The `gest` command-line tool: the C++ counterpart of invoking the
 * original Python framework.
 *
 *   gest run <config.xml>      run a GA search from a configuration
 *   gest probe <config.xml> <run_dir|population>
 *                              re-measure an individual with full
 *                              signal capture and seal waveforms
 *   gest report <run_dir>      fitness/phase/cache summary of a run
 *   gest explain <run_dir>     champion ancestry + search dynamics
 *   gest verify <run_dir>      replay a sealed run against its manifest
 *   gest compare <a> <b> [...] cross-run result + performance deltas
 *   gest stats <run_dir>       per-generation statistics of a saved run
 *   gest fittest <run_dir>     print the fittest individual's source
 *   gest runs <workspace>      index every run in a workspace and
 *                              screen cross-run regressions
 *   gest platforms             list the bundled platform presets
 *   gest classes               list measurement and fitness classes
 *
 * `stats` and `fittest` rebuild the instruction library from the
 * run_configuration.xml recorded in the run directory, so a run is
 * self-describing; `--library arm|x86` overrides that. `report` reads
 * only history.csv (plus analytics.csv when recorded), so it also
 * summarizes in-flight runs; `--json` makes it machine-readable.
 * `explain` reads lineage.csv + analytics.csv and reconstructs the
 * champion's ancestry back to generation 0.
 *
 * Global flags: --quiet / --verbose (and the GEST_LOG environment
 * variable, e.g. GEST_LOG=debug,timestamps) control log output.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include "attribution/attribution.hh"
#include "attribution/attribution_io.hh"
#include "config/config.hh"
#include "fitness/fitness.hh"
#include "isa/standard_libs.hh"
#include "measure/measurement.hh"
#include "native/native_measurement.hh"
#include "output/report.hh"
#include "output/stats.hh"
#include "output/top.hh"
#include "platform/platform.hh"
#include "registry/registry.hh"
#include "provenance/compare.hh"
#include "provenance/verify.hh"
#include "signal/analysis.hh"
#include "signal/signal_probe.hh"
#include "signal/waveform_io.hh"
#include "util/fileutil.hh"
#include "util/strutil.hh"

namespace {

using namespace gest;

int
usage()
{
    // One line per subcommand, each with a description:
    // tests/test_cli.cc asserts this list and the README's command
    // table name exactly the same set of subcommands.
    std::fprintf(
        stderr,
        "usage:\n"
        "  gest run <config.xml>        run a GA search\n"
        "  gest probe <config.xml> <run_dir|population>\n"
        "                               re-measure an individual with "
        "full signal capture\n"
        "  gest attribute <config.xml> <run_dir|population>\n"
        "                               ablate the champion gene by "
        "gene and attribute its fitness\n"
        "  gest report <run_dir>        summarize a run (works while "
        "in flight)\n"
        "  gest explain <run_dir>       champion ancestry, mix "
        "trajectory, pathologies\n"
        "  gest stats <run_dir>         per-generation statistics\n"
        "  gest fittest <run_dir>       print the fittest individual\n"
        "  gest top <url|run_dir>       live dashboard of a run "
        "(telemetry server or files)\n"
        "  gest runs <workspace>        index every run in a "
        "workspace; screen regressions\n"
        "  gest verify <run_dir>        replay a sealed run against "
        "its manifest\n"
        "  gest compare <baseline> <candidate> [...]\n"
        "                               cross-run result + performance "
        "deltas\n"
        "  gest platforms               list platform presets\n"
        "  gest classes                 list measurement/fitness "
        "classes\n"
        "global options: --quiet | --verbose (or GEST_LOG=quiet|debug"
        "[,timestamps])\n"
        "options for run: --threads N (override evaluation workers)\n"
        "                 --trace [file.json] (write a Chrome trace; "
        "default <output dir>/trace.json)\n"
        "                 --steady-state on|off (periodic-trace fast "
        "path; default on, bit-identical)\n"
        "                 --listen host:port (serve live telemetry; "
        "port 0 = ephemeral)\n"
        "options for top: --interval SECONDS (refresh period, default "
        "1) | --once (single frame)\n"
        "                 --fleet (target is a workspace of runs; "
        "multi-run view)\n"
        "options for runs: --filter k=v (narrow the view; repeatable; "
        "prefix match)\n"
        "                  --baseline <run> (screen the baseline's "
        "config-hash cohort; exit 1 on regression)\n"
        "                  --json (machine-readable output)\n"
        "options for report: --json (machine-readable output)\n"
        "options for verify: --quick (manifest + checksums only, no "
        "replay)\n"
        "options for compare: --json (machine-readable output)\n"
        "options for probe: --out <dir> (artifact directory; default "
        "<target>/probe)\n"
        "options for attribute: --out <dir> (artifact directory; "
        "default <target>/attribute — never the sealed "
        "attribution/)\n"
        "                       --top K (load-bearing genes listed; "
        "default 5)\n"
        "options for stats/fittest: --library arm|x86|cache-stress\n");
    return 2;
}

isa::InstructionLibrary
libraryForRun(const std::string& run_dir, const char* override_name)
{
    if (override_name) {
        const std::string name = override_name;
        if (name == "arm")
            return isa::armLikeLibrary();
        if (name == "armv7")
            return isa::armV7LikeLibrary();
        if (name == "x86")
            return isa::x86LikeLibrary();
        if (name == "cache-stress")
            return isa::armCacheStressLibrary();
        fatal("unknown --library '", name, "'");
    }
    const std::string recorded = run_dir + "/run_configuration.xml";
    std::string text;
    if (tryReadFile(recorded, text)) {
        // Only the instruction library is needed; the recorded
        // configuration's relative file references (template, external
        // measurement configs) do not resolve from the run directory.
        config::ParseOptions options;
        options.loadReferencedFiles = false;
        config::RunConfig cfg =
            config::parseConfig(text, run_dir, options);
        return std::move(cfg.library);
    }
    warn("no run_configuration.xml in ", run_dir,
         "; assuming the bundled ARM library");
    return isa::armLikeLibrary();
}

int
cmdRun(const std::string& path, const char* threads_override,
       bool want_trace, const char* trace_file,
       const char* steady_override, const char* listen_override)
{
    config::RunConfig cfg = config::loadConfig(path);
    if (listen_override)
        cfg.listenAddress = listen_override;
    if (threads_override) {
        cfg.ga.threads = static_cast<int>(
            parseInt(threads_override, "--threads"));
        cfg.ga.validate();
    }
    if (steady_override) {
        const std::string mode = steady_override;
        if (mode == "on")
            cfg.steadyStateOverride = true;
        else if (mode == "off")
            cfg.steadyStateOverride = false;
        else
            fatal("--steady-state must be 'on' or 'off', got '", mode,
                  "'");
    }
    if (trace_file) {
        cfg.traceFile = trace_file;
    } else if (want_trace && cfg.traceFile.empty()) {
        if (cfg.outputDirectory.empty())
            fatal("--trace without a file name needs an <output "
                  "directory=\"...\"> to put trace.json in; pass "
                  "--trace <file.json> instead");
        cfg.traceFile = cfg.outputDirectory + "/trace.json";
    }
    inform("running GA: population ", cfg.ga.populationSize,
           ", individual size ", cfg.ga.individualSize, ", ",
           cfg.ga.generations, " generations, measurement ",
           cfg.measurementClass, ", fitness ", cfg.fitnessClass,
           ", threads ", cfg.ga.threads);
    const config::RunResult result = config::runFromConfig(cfg);
    if (!quiet()) {
        for (const core::GenerationRecord& rec : result.history) {
            if (rec.generation % 10 == 0 ||
                rec.generation + 1 ==
                    static_cast<int>(result.history.size()))
                std::printf("gen %3d: best %.6f avg %.6f "
                            "diversity %.3f\n",
                            rec.generation, rec.bestFitness,
                            rec.averageFitness, rec.diversity);
        }
    }

    std::printf("best individual: id %llu, fitness %.6f\n",
                static_cast<unsigned long long>(result.best.id),
                result.best.fitness);
    for (const std::string& line :
         core::renderLines(cfg.library, result.best))
        std::printf("%s\n", line.c_str());
    std::printf("breakdown: %s; unique instructions: %zu; "
                "measurements performed: %llu\n",
                core::breakdownToString(
                    core::classBreakdown(cfg.library, result.best))
                    .c_str(),
                core::uniqueInstructionCount(result.best),
                static_cast<unsigned long long>(result.evaluations));
    if (cfg.ga.fitnessCacheSize > 0)
        std::printf("fitness cache: %llu hits, %llu misses (%.1f%% hit "
                    "rate)\n",
                    static_cast<unsigned long long>(result.cacheHits),
                    static_cast<unsigned long long>(result.cacheMisses),
                    result.cacheHits + result.cacheMisses > 0
                        ? 100.0 * static_cast<double>(result.cacheHits) /
                              static_cast<double>(result.cacheHits +
                                                  result.cacheMisses)
                        : 0.0);
    if (!result.traceFile.empty())
        std::printf("trace written to %s (open in chrome://tracing or "
                    "https://ui.perfetto.dev)\n",
                    result.traceFile.c_str());
    if (!result.listenAddress.empty())
        std::printf("telemetry served on http://%s (gest top %s)\n",
                    result.listenAddress.c_str(),
                    result.listenAddress.c_str());
    if (!result.waveformFiles.empty())
        std::printf("waveform captures sealed in %s/waveforms (%zu "
                    "files; validate with tools/check_waveforms.py)\n",
                    cfg.outputDirectory.c_str(),
                    result.waveformFiles.size());
    if (!cfg.outputDirectory.empty())
        std::printf("artifacts recorded in %s\n",
                    cfg.outputDirectory.c_str());
    return 0;
}

/**
 * Resolve a probe/attribute target: a run directory yields its
 * all-time champion, a saved population file its best individual
 * (falling back to the first when none carries a fitness).
 */
core::Individual
resolveTargetIndividual(const config::RunConfig& cfg,
                        const std::string& target, const char* what,
                        int* generation)
{
    if (dirExists(target))
        return output::fittestInRun(cfg.library, target, generation);
    if (fileExists(target)) {
        const core::Population pop =
            core::loadPopulation(cfg.library, target);
        if (pop.individuals.empty())
            fatal("population file ", target, " holds no individuals");
        core::Individual ind = pop.individuals.front();
        for (const core::Individual& candidate : pop.individuals) {
            if (candidate.evaluated &&
                (!ind.evaluated || candidate.fitness > ind.fitness))
                ind = candidate;
        }
        return ind;
    }
    fatal(what, " target ", target,
          " is neither a run directory nor a population file");
}

int
cmdProbe(const std::string& config_path, const std::string& target,
         const char* out_override)
{
    config::RunConfig cfg = config::loadConfig(config_path);
    config::registerBuiltins();
    native::registerNativeMeasurements();

    std::unique_ptr<measure::Measurement> measurement =
        measure::MeasurementRegistry::instance().create(
            cfg.measurementClass, cfg.library);
    measurement->init(cfg.measurementConfig);
    std::unique_ptr<fitness::Fitness> fit =
        fitness::FitnessRegistry::instance().create(cfg.fitnessClass);
    fit->init(cfg.fitnessConfig);

    int generation = -1;
    core::Individual ind =
        resolveTargetIndividual(cfg, target, "probe", &generation);

    inform("probing individual ", ind.id, " (", ind.code.size(),
           " instructions) with measurement ", cfg.measurementClass);

    signal::SignalProbe probe;
    ind.measurements =
        measurement->measureWithProbe(ind.code, &probe).values;
    ind.evaluated = true;
    ind.fitness = fit->getFitness(ind, cfg.library);

    const std::string out_dir =
        out_override ? std::string(out_override) : target + "/probe";
    const signal::WaveformArtifacts artifacts =
        signal::writeWaveformArtifacts(
            out_dir, "individual_" + std::to_string(ind.id), probe);

    std::printf("# id %llu%s, fitness %.6f (%s)\n",
                static_cast<unsigned long long>(ind.id),
                generation >= 0
                    ? (", generation " + std::to_string(generation))
                          .c_str()
                    : "",
                ind.fitness, fit->name().c_str());
    const std::vector<std::string> names = measurement->valueNames();
    for (std::size_t i = 0; i < ind.measurements.size(); ++i)
        std::printf("%-24s %.9g\n",
                    i < names.size() ? names[i].c_str() : "value",
                    ind.measurements[i]);
    std::printf("%s", signal::formatProbeSummary(
                          signal::summarizeProbe(probe), probe)
                          .c_str());
    std::printf("waveforms: %s\n", artifacts.csvPath.c_str());
    std::printf("           %s\n", artifacts.jsonPath.c_str());
    if (!artifacts.spectrumPath.empty())
        std::printf("           %s\n", artifacts.spectrumPath.c_str());
    return 0;
}

int
cmdAttribute(const std::string& config_path, const std::string& target,
             const char* out_override, const char* top_arg)
{
    config::RunConfig cfg = config::loadConfig(config_path);
    config::registerBuiltins();
    native::registerNativeMeasurements();

    std::unique_ptr<measure::Measurement> measurement =
        measure::MeasurementRegistry::instance().create(
            cfg.measurementClass, cfg.library);
    measurement->init(cfg.measurementConfig);
    std::unique_ptr<fitness::Fitness> fit =
        fitness::FitnessRegistry::instance().create(cfg.fitnessClass);
    fit->init(cfg.fitnessConfig);

    int generation = -1;
    core::Individual ind =
        resolveTargetIndividual(cfg, target, "attribute", &generation);

    attribution::AttributionOptions options;
    if (top_arg)
        options.topK = static_cast<int>(parseInt(top_arg, "--top"));

    inform("attributing individual ", ind.id, " (", ind.code.size(),
           " genes) with measurement ", cfg.measurementClass);

    attribution::AttributionResult result =
        attribution::computeAttribution(cfg.library, *measurement,
                                        *fit, ind, options);
    result.generation = generation;

    // Default beside, never inside, the sealed attribution/ directory:
    // overwriting a sealed artifact would fail a later `gest verify`.
    const std::string out_dir =
        out_override ? std::string(out_override)
                     : target + "/attribute";
    const attribution::AttributionArtifacts artifacts =
        attribution::writeAttributionArtifacts(
            out_dir, "individual_" + std::to_string(ind.id), result);

    std::printf("# id %llu%s, fitness %.6f (%s, %s)\n",
                static_cast<unsigned long long>(result.individualId),
                generation >= 0
                    ? (", generation " + std::to_string(generation))
                          .c_str()
                    : "",
                result.baselineFitness, cfg.measurementClass.c_str(),
                fit->name().c_str());
    std::printf("filler: %s (%s); %llu evaluations for %zu genes\n",
                result.fillerInstruction.c_str(),
                result.fillerIsNop ? "nop" : "same-class",
                static_cast<unsigned long long>(result.evaluationsUsed),
                result.genes.size());
    std::printf("top load-bearing genes:\n");
    for (std::size_t rank = 0; rank < result.topGenes.size(); ++rank) {
        const attribution::GeneAttribution& g =
            result.genes[result.topGenes[rank]];
        std::printf("  %zu. gene %-3zu %-10s %-20s delta %+.6f%s\n",
                    rank + 1, g.index, g.instruction.c_str(),
                    g.operands.c_str(), g.deltaFitness,
                    result.sumDelta != 0.0
                        ? (" (" +
                           std::to_string(static_cast<int>(
                               100.0 * g.deltaFitness /
                                   result.sumDelta +
                               0.5)) +
                           "% of sum)")
                              .c_str()
                        : "");
    }
    std::printf("class attribution:\n");
    for (const attribution::ClassAttribution& c : result.classes)
        std::printf("  %-12s %3d genes   delta %+.6f\n",
                    isa::toString(c.cls), c.genes, c.deltaSum);
    std::printf("sum of per-gene deltas %.6f; whole-champion ablation "
                "delta %.6f\n",
                result.sumDelta, result.wholeAblationDelta);
    std::printf("artifacts: %s\n", artifacts.csvPath.c_str());
    std::printf("           %s\n", artifacts.jsonPath.c_str());
    return 0;
}

int
cmdReport(const std::string& run_dir, bool json)
{
    const output::RunReport report = output::analyzeRun(run_dir);
    std::printf("%s", (json ? output::formatReportJson(report)
                            : output::formatReport(report))
                          .c_str());
    return 0;
}

int
cmdExplain(const std::string& run_dir)
{
    std::printf("%s",
                output::formatExplain(output::analyzeExplain(run_dir))
                    .c_str());
    return 0;
}

int
cmdStats(const std::string& run_dir, const char* library_override)
{
    const isa::InstructionLibrary lib =
        libraryForRun(run_dir, library_override);
    std::printf("%s", output::formatSummaryTable(
                          output::summarizeRun(lib, run_dir))
                          .c_str());
    return 0;
}

int
cmdFittest(const std::string& run_dir, const char* library_override)
{
    const isa::InstructionLibrary lib =
        libraryForRun(run_dir, library_override);
    int generation = 0;
    const core::Individual best =
        output::fittestInRun(lib, run_dir, &generation);
    std::printf("# id %llu, generation %d, fitness %.6f\n",
                static_cast<unsigned long long>(best.id), generation,
                best.fitness);
    for (const std::string& line : core::renderLines(lib, best))
        std::printf("%s\n", line.c_str());
    return 0;
}

int
cmdTop(const std::string& target, double interval_s, bool once)
{
    // A target with no local directory behind it is treated as a
    // telemetry URL ("host:port" or "http://host:port").
    const bool is_url =
        !dirExists(target) &&
        (startsWith(target, "http://") ||
         target.find(':') != std::string::npos);

    // File targets refresh through the incremental poller: only the
    // history.csv bytes appended since the previous frame are parsed.
    output::TopFilePoller poller(target);

    bool had_success = false;
    for (;;) {
        output::TopSnapshot snapshot;
        const bool ok = is_url ? output::fetchTopSnapshot(target, snapshot)
                               : poller.poll(snapshot);
        if (!ok) {
            if (had_success) {
                // The server went away mid-watch: the run finished and
                // tore it down, which is a normal ending.
                std::printf("telemetry source gone (%s); run finished?\n",
                            snapshot.error.c_str());
                return 0;
            }
            std::fprintf(stderr, "gest top: %s\n",
                         snapshot.error.c_str());
            return 1;
        }
        had_success = true;

        const std::string frame = output::renderTop(snapshot);
        if (once) {
            std::printf("%s", frame.c_str());
            return 0;
        }
        // Home + clear-to-end keeps the frame flicker-free on any VT100
        // descendant without a curses dependency.
        std::printf("\033[H\033[J%s(refresh %.1fs — ctrl-c to quit)\n",
                    frame.c_str(), interval_s);
        std::fflush(stdout);
        if (snapshot.state == "completed") {
            std::printf("run completed.\n");
            return 0;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<long>(interval_s * 1000.0)));
    }
}

/**
 * `gest top --fleet <workspace>`: one compact row per run in the
 * workspace. Running runs that serve telemetry are refreshed live over
 * HTTP; everything else reads from the registry scan (files). The view
 * exits once no run is left running.
 */
int
cmdTopFleet(const std::string& workspace, double interval_s, bool once)
{
    for (;;) {
        const std::vector<registry::RunEntry> entries =
            registry::scanWorkspace(workspace);

        std::string frame = "gest top — fleet " + workspace + "\n";
        char line[512];
        std::snprintf(line, sizeof(line),
                      "%-24s %-10s %-11s %12s %7s  %s\n", "run", "state",
                      "progress", "best", "alerts", "source");
        frame += line;

        bool any_running = false;
        unsigned long long total_alerts = 0;
        std::vector<std::string> alert_lines;
        for (const registry::RunEntry& entry : entries) {
            std::string state = entry.state;
            int done = entry.generationsCompleted;
            double best = entry.bestFitness;
            unsigned long long alerts =
                static_cast<unsigned long long>(entry.alerts);
            std::string source = "files";
            if (entry.state == "running" && !entry.listen.empty()) {
                output::TopSnapshot snap;
                if (output::fetchTopSnapshot(entry.listen, snap)) {
                    state = snap.state;
                    done = snap.generation + 1;
                    best = snap.bestFitness;
                    if (snap.alertsRaised >= 0)
                        alerts = static_cast<unsigned long long>(
                            snap.alertsRaised);
                    for (const std::string& alert : snap.alertLines)
                        alert_lines.push_back(entry.name + ": " + alert);
                    source = "live " + entry.listen;
                }
            }
            if (state == "running")
                any_running = true;
            total_alerts += alerts;

            char progress[32];
            if (entry.generations > 0)
                std::snprintf(progress, sizeof(progress), "%d/%d", done,
                              entry.generations);
            else
                std::snprintf(progress, sizeof(progress), "%d/?", done);
            std::snprintf(line, sizeof(line),
                          "%-24s %-10s %-11s %12.6f %7llu  %s\n",
                          entry.name.c_str(), state.c_str(), progress,
                          best, alerts, source.c_str());
            frame += line;
        }
        std::snprintf(line, sizeof(line),
                      "%zu run(s), %s, %llu alert(s)\n", entries.size(),
                      any_running ? "fleet active" : "fleet idle",
                      total_alerts);
        frame += line;
        if (alert_lines.size() > 5)
            alert_lines.erase(alert_lines.begin(),
                              alert_lines.end() - 5);
        for (const std::string& alert : alert_lines)
            frame += "  " + alert + "\n";

        if (once) {
            std::printf("%s", frame.c_str());
            return 0;
        }
        std::printf("\033[H\033[J%s(refresh %.1fs — ctrl-c to quit)\n",
                    frame.c_str(), interval_s);
        std::fflush(stdout);
        if (!any_running) {
            std::printf("fleet idle; all runs finished.\n");
            return 0;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<long>(interval_s * 1000.0)));
    }
}

int
cmdRuns(const std::string& workspace,
        const std::vector<std::string>& filters, bool json,
        const char* baseline)
{
    const std::vector<registry::RunEntry> all =
        registry::scanWorkspace(workspace);
    const std::string csv_path =
        registry::writeRegistry(workspace, all);
    inform("registry written to ", csv_path, " (+ registry.json)");

    // Filters narrow the printed view only; the sealed registry always
    // indexes the whole workspace.
    std::vector<registry::RunEntry> view;
    for (const registry::RunEntry& entry : all) {
        bool keep = true;
        for (const std::string& filter : filters) {
            const std::size_t eq = filter.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal("--filter needs key=value, got '", filter, "'");
            if (!registry::matchesFilter(entry, filter.substr(0, eq),
                                         filter.substr(eq + 1))) {
                keep = false;
                break;
            }
        }
        if (keep)
            view.push_back(entry);
    }

    if (baseline) {
        const std::vector<registry::BaselineComparison> rows =
            registry::screenBaseline(workspace, baseline, all);
        if (json)
            std::printf("%s",
                        registry::formatBaselineJson(rows).c_str());
        else
            std::printf("%s%s",
                        registry::formatRunsTable(view).c_str(),
                        registry::formatBaselineTable(rows).c_str());
        for (const registry::BaselineComparison& row : rows)
            if (row.fitnessRegression)
                return 1;
        return 0;
    }
    std::printf("%s",
                json ? registry::formatRegistryJson(workspace, view)
                           .c_str()
                     : registry::formatRunsTable(view).c_str());
    return 0;
}

int
cmdVerify(const std::string& run_dir, bool quick)
{
    provenance::VerifyOptions options;
    options.quick = quick;
    const provenance::VerifyResult result =
        provenance::verifyRun(run_dir, options);
    std::printf("%s", provenance::formatVerify(run_dir, result).c_str());
    return result.ok ? 0 : 1;
}

int
cmdCompare(const std::vector<std::string>& dirs, bool json)
{
    std::vector<provenance::RunComparison> comparisons;
    for (std::size_t i = 1; i < dirs.size(); ++i)
        comparisons.push_back(provenance::compareRuns(dirs[0], dirs[i]));
    if (json) {
        std::printf("%s",
                    provenance::formatComparisonsJson(comparisons).c_str());
    } else {
        for (const provenance::RunComparison& cmp : comparisons)
            std::printf("%s", provenance::formatComparison(cmp).c_str());
    }
    return 0;
}

int
cmdPlatforms()
{
    for (const std::string& name : platform::Platform::presetNames()) {
        const auto plat = platform::Platform::byName(name);
        std::printf("%-12s %d cores @ %.2f GHz, %s, %s\n", name.c_str(),
                    plat->chip().numCores, plat->cpu().freqGHz,
                    plat->cpu().outOfOrder ? "out-of-order" : "in-order",
                    plat->pdnModel() ? "PDN instrumented"
                                     : "no PDN instrumentation");
    }
    return 0;
}

int
cmdClasses()
{
    config::registerBuiltins();
    native::registerNativeMeasurements();
    std::printf("measurement classes:\n");
    for (const std::string& name :
         measure::MeasurementRegistry::instance().names())
        std::printf("  %s\n", name.c_str());
    std::printf("fitness classes:\n");
    for (const std::string& name :
         fitness::FitnessRegistry::instance().names())
        std::printf("  %s\n", name.c_str());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
try {
    configureLoggingFromEnv();
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    // Separate flags from positional operands; flags may appear
    // anywhere after the command. --trace takes an optional value: the
    // next argument is consumed only when it names a .json file.
    std::vector<std::string> positional;
    const char* library_override = nullptr;
    const char* threads_override = nullptr;
    const char* out_override = nullptr;
    const char* trace_file = nullptr;
    const char* steady_override = nullptr;
    const char* listen_override = nullptr;
    const char* interval_arg = nullptr;
    const char* top_arg = nullptr;
    const char* baseline_arg = nullptr;
    std::vector<std::string> filters;
    bool want_trace = false;
    bool want_json = false;
    bool want_once = false;
    bool want_quick = false;
    bool want_fleet = false;
    for (int i = 2; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--quiet") == 0) {
            setLogLevel(LogLevel::Quiet);
        } else if (std::strcmp(arg, "--verbose") == 0) {
            setLogLevel(LogLevel::Debug);
        } else if (std::strcmp(arg, "--library") == 0) {
            if (i + 1 >= argc)
                fatal("--library requires a value");
            library_override = argv[++i];
        } else if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc)
                fatal("--threads requires a value");
            threads_override = argv[++i];
        } else if (std::strcmp(arg, "--out") == 0) {
            if (i + 1 >= argc)
                fatal("--out requires a value");
            out_override = argv[++i];
        } else if (std::strcmp(arg, "--trace") == 0) {
            want_trace = true;
            if (i + 1 < argc && endsWith(argv[i + 1], ".json"))
                trace_file = argv[++i];
        } else if (std::strcmp(arg, "--steady-state") == 0) {
            if (i + 1 >= argc)
                fatal("--steady-state requires 'on' or 'off'");
            steady_override = argv[++i];
        } else if (std::strcmp(arg, "--listen") == 0) {
            if (i + 1 >= argc)
                fatal("--listen requires host:port (e.g. 127.0.0.1:0)");
            listen_override = argv[++i];
        } else if (std::strcmp(arg, "--interval") == 0) {
            if (i + 1 >= argc)
                fatal("--interval requires a value in seconds");
            interval_arg = argv[++i];
        } else if (std::strcmp(arg, "--top") == 0) {
            if (i + 1 >= argc)
                fatal("--top requires a value");
            top_arg = argv[++i];
        } else if (std::strcmp(arg, "--filter") == 0) {
            if (i + 1 >= argc)
                fatal("--filter requires key=value");
            filters.emplace_back(argv[++i]);
        } else if (std::strcmp(arg, "--baseline") == 0) {
            if (i + 1 >= argc)
                fatal("--baseline requires a run name or path");
            baseline_arg = argv[++i];
        } else if (std::strcmp(arg, "--fleet") == 0) {
            want_fleet = true;
        } else if (std::strcmp(arg, "--once") == 0) {
            want_once = true;
        } else if (std::strcmp(arg, "--json") == 0) {
            want_json = true;
        } else if (std::strcmp(arg, "--quick") == 0) {
            want_quick = true;
        } else if (startsWith(arg, "--")) {
            fatal("unknown option '", arg, "'");
        } else {
            positional.emplace_back(arg);
        }
    }

    if (command == "run" && positional.size() == 1)
        return cmdRun(positional[0], threads_override, want_trace,
                      trace_file, steady_override, listen_override);
    if (command == "top" && positional.size() == 1) {
        double interval_s =
            interval_arg ? parseDouble(interval_arg, "--interval") : 1.0;
        if (interval_s < 0.1)
            interval_s = 0.1;
        if (want_fleet)
            return cmdTopFleet(positional[0], interval_s, want_once);
        return cmdTop(positional[0], interval_s, want_once);
    }
    if (command == "runs" && positional.size() == 1)
        return cmdRuns(positional[0], filters, want_json, baseline_arg);
    if (command == "probe" && positional.size() == 2)
        return cmdProbe(positional[0], positional[1], out_override);
    if (command == "attribute" && positional.size() == 2)
        return cmdAttribute(positional[0], positional[1], out_override,
                            top_arg);
    if (command == "report" && positional.size() == 1)
        return cmdReport(positional[0], want_json);
    if (command == "explain" && positional.size() == 1)
        return cmdExplain(positional[0]);
    if (command == "verify" && positional.size() == 1)
        return cmdVerify(positional[0], want_quick);
    if (command == "compare" && positional.size() >= 2)
        return cmdCompare(positional, want_json);
    if (command == "stats" && positional.size() == 1)
        return cmdStats(positional[0], library_override);
    if (command == "fittest" && positional.size() == 1)
        return cmdFittest(positional[0], library_override);
    if (command == "platforms")
        return cmdPlatforms();
    if (command == "classes")
        return cmdClasses();
    return usage();
} catch (const gest::FatalError& err) {
    std::fprintf(stderr, "fatal: %s\n", err.what());
    return 1;
}
