/**
 * @file
 * The `gest` command-line tool: the C++ counterpart of invoking the
 * original Python framework.
 *
 *   gest run <config.xml>      run a GA search from a configuration
 *   gest stats <run_dir>       per-generation statistics of a saved run
 *   gest fittest <run_dir>     print the fittest individual's source
 *   gest platforms             list the bundled platform presets
 *   gest classes               list measurement and fitness classes
 *
 * `stats` and `fittest` rebuild the instruction library from the
 * run_configuration.xml recorded in the run directory, so a run is
 * self-describing; `--library arm|x86` overrides that.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "config/config.hh"
#include "isa/standard_libs.hh"
#include "measure/measurement.hh"
#include "native/native_measurement.hh"
#include "output/stats.hh"
#include "platform/platform.hh"
#include "util/fileutil.hh"
#include "util/strutil.hh"

namespace {

using namespace gest;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  gest run <config.xml>        run a GA search\n"
        "  gest stats <run_dir>         summarize a saved run\n"
        "  gest fittest <run_dir>       print the fittest individual\n"
        "  gest platforms               list platform presets\n"
        "  gest classes                 list measurement/fitness "
        "classes\n"
        "options for run: --threads N (override the config's "
        "evaluation workers)\n"
        "options for stats/fittest: --library arm|x86|cache-stress\n");
    return 2;
}

isa::InstructionLibrary
libraryForRun(const std::string& run_dir, const char* override_name)
{
    if (override_name) {
        const std::string name = override_name;
        if (name == "arm")
            return isa::armLikeLibrary();
        if (name == "armv7")
            return isa::armV7LikeLibrary();
        if (name == "x86")
            return isa::x86LikeLibrary();
        if (name == "cache-stress")
            return isa::armCacheStressLibrary();
        fatal("unknown --library '", name, "'");
    }
    const std::string recorded = run_dir + "/run_configuration.xml";
    std::string text;
    if (tryReadFile(recorded, text)) {
        // Only the instruction library is needed; the recorded
        // configuration's relative file references (template, external
        // measurement configs) do not resolve from the run directory.
        config::ParseOptions options;
        options.loadReferencedFiles = false;
        config::RunConfig cfg =
            config::parseConfig(text, run_dir, options);
        return std::move(cfg.library);
    }
    warn("no run_configuration.xml in ", run_dir,
         "; assuming the bundled ARM library");
    return isa::armLikeLibrary();
}

int
cmdRun(const std::string& path, const char* threads_override)
{
    config::RunConfig cfg = config::loadConfig(path);
    if (threads_override) {
        cfg.ga.threads = static_cast<int>(
            parseInt(threads_override, "--threads"));
        cfg.ga.validate();
    }
    inform("running GA: population ", cfg.ga.populationSize,
           ", individual size ", cfg.ga.individualSize, ", ",
           cfg.ga.generations, " generations, measurement ",
           cfg.measurementClass, ", fitness ", cfg.fitnessClass,
           ", threads ", cfg.ga.threads);
    const config::RunResult result = config::runFromConfig(cfg);
    if (!quiet()) {
        for (const core::GenerationRecord& rec : result.history) {
            if (rec.generation % 10 == 0 ||
                rec.generation + 1 ==
                    static_cast<int>(result.history.size()))
                std::printf("gen %3d: best %.6f avg %.6f "
                            "diversity %.3f\n",
                            rec.generation, rec.bestFitness,
                            rec.averageFitness, rec.diversity);
        }
    }

    std::printf("best individual: id %llu, fitness %.6f\n",
                static_cast<unsigned long long>(result.best.id),
                result.best.fitness);
    for (const std::string& line :
         core::renderLines(cfg.library, result.best))
        std::printf("%s\n", line.c_str());
    std::printf("breakdown: %s; unique instructions: %zu; "
                "measurements performed: %llu\n",
                core::breakdownToString(
                    core::classBreakdown(cfg.library, result.best))
                    .c_str(),
                core::uniqueInstructionCount(result.best),
                static_cast<unsigned long long>(result.evaluations));
    if (cfg.ga.fitnessCacheSize > 0)
        std::printf("fitness cache: %llu hits, %llu misses (%.1f%% hit "
                    "rate)\n",
                    static_cast<unsigned long long>(result.cacheHits),
                    static_cast<unsigned long long>(result.cacheMisses),
                    result.cacheHits + result.cacheMisses > 0
                        ? 100.0 * static_cast<double>(result.cacheHits) /
                              static_cast<double>(result.cacheHits +
                                                  result.cacheMisses)
                        : 0.0);
    if (!cfg.outputDirectory.empty())
        std::printf("artifacts recorded in %s\n",
                    cfg.outputDirectory.c_str());
    return 0;
}

int
cmdStats(const std::string& run_dir, const char* library_override)
{
    const isa::InstructionLibrary lib =
        libraryForRun(run_dir, library_override);
    std::printf("%s", output::formatSummaryTable(
                          output::summarizeRun(lib, run_dir))
                          .c_str());
    return 0;
}

int
cmdFittest(const std::string& run_dir, const char* library_override)
{
    const isa::InstructionLibrary lib =
        libraryForRun(run_dir, library_override);
    int generation = 0;
    const core::Individual best =
        output::fittestInRun(lib, run_dir, &generation);
    std::printf("# id %llu, generation %d, fitness %.6f\n",
                static_cast<unsigned long long>(best.id), generation,
                best.fitness);
    for (const std::string& line : core::renderLines(lib, best))
        std::printf("%s\n", line.c_str());
    return 0;
}

int
cmdPlatforms()
{
    for (const std::string& name : platform::Platform::presetNames()) {
        const auto plat = platform::Platform::byName(name);
        std::printf("%-12s %d cores @ %.2f GHz, %s, %s\n", name.c_str(),
                    plat->chip().numCores, plat->cpu().freqGHz,
                    plat->cpu().outOfOrder ? "out-of-order" : "in-order",
                    plat->pdnModel() ? "PDN instrumented"
                                     : "no PDN instrumentation");
    }
    return 0;
}

int
cmdClasses()
{
    config::registerBuiltins();
    native::registerNativeMeasurements();
    std::printf("measurement classes:\n");
    for (const std::string& name :
         measure::MeasurementRegistry::instance().names())
        std::printf("  %s\n", name.c_str());
    std::printf("fitness classes:\n");
    for (const std::string& name :
         fitness::FitnessRegistry::instance().names())
        std::printf("  %s\n", name.c_str());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
try {
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    const char* library_override = nullptr;
    const char* threads_override = nullptr;
    for (int i = 2; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--library") == 0)
            library_override = argv[i + 1];
        if (std::strcmp(argv[i], "--threads") == 0)
            threads_override = argv[i + 1];
    }
    if (argc > 2 && std::strcmp(argv[argc - 1], "--threads") == 0)
        fatal("--threads requires a value");

    if (command == "run" && argc >= 3)
        return cmdRun(argv[2], threads_override);
    if (command == "stats" && argc >= 3)
        return cmdStats(argv[2], library_override);
    if (command == "fittest" && argc >= 3)
        return cmdFittest(argv[2], library_override);
    if (command == "platforms")
        return cmdPlatforms();
    if (command == "classes")
        return cmdClasses();
    return usage();
} catch (const gest::FatalError& err) {
    std::fprintf(stderr, "fatal: %s\n", err.what());
    return 1;
}
