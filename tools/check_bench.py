#!/usr/bin/env python3
"""Validate a BENCH_engine.json perf-smoke report.

The report is written by `bench_micro_engine --smoke_json=<path>` and
records, per shipped platform, evals/sec with the steady-state fast
path on and off over a random body set and a steady (tiling) body set.

Gating checks (schema and correctness — these must always hold):

  * valid JSON with version 1 and benchmark "engine_steady_smoke";
  * one record per platform with all required fields and sane types;
  * fitness_identical is true everywhere: the fast path must produce
    bit-identical evaluations to full simulation;
  * rates are positive and speedups consistent with the rates.

Absolute throughput and speedup values are reported but never gated —
CI machines are too noisy for that.

Usage:
  check_bench.py <BENCH_engine.json>      validate an existing report
  check_bench.py <new.json> --previous <old.json>
                                          validate, then print an
                                          informational throughput diff
                                          against a previous report
  check_bench.py --drive <bench-binary>   run the smoke in a temp dir,
                                          then validate its report

The --previous diff never fails the check: it exists so a CI log (or a
human) can eyeball run-over-run drift against the committed baseline.
A missing or unreadable previous report is reported and skipped.

Exit status 0 when the report is valid; 1 with a message otherwise.
"""

import json
import math
import os
import shutil
import subprocess
import sys
import tempfile

ARTIFACT_SRC = None  # set by drive(); copied out by fail() on failure

REQUIRED_FIELDS = {
    "platform": str,
    "min_cycles": int,
    "bodies": int,
    "steady_hits": int,
    "fitness_identical": bool,
    "evals_per_sec_fast": (int, float),
    "evals_per_sec_full": (int, float),
    "speedup": (int, float),
    "steady_bodies": int,
    "evals_per_sec_fast_steady": (int, float),
    "evals_per_sec_full_steady": (int, float),
    "speedup_steady": (int, float),
    "coverage_cells": int,
    "evals_per_sec_fast_cov": (int, float),
    "coverage_overhead": (int, float),
}


def fail(message):
    if ARTIFACT_SRC is not None:
        dest = os.environ.get("GEST_CHECK_ARTIFACT_DIR")
        if dest:
            target = os.path.join(dest, "check_bench")
            shutil.copytree(ARTIFACT_SRC, target, dirs_exist_ok=True)
            print(f"check_bench: scratch copied to {target}",
                  file=sys.stderr)
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_speedup(record, fast_key, full_key, speedup_key):
    fast = record[fast_key]
    full = record[full_key]
    speedup = record[speedup_key]
    name = record["platform"]
    if full <= 0.0:
        # No bodies in this set; the speedup must be the 0 sentinel.
        if speedup != 0.0:
            fail(f"{name}: {speedup_key} is {speedup} but {full_key} "
                 "is 0")
        return
    if fast <= 0.0:
        fail(f"{name}: {fast_key} must be positive, got {fast}")
    if not math.isclose(speedup, fast / full, rel_tol=0.02):
        fail(f"{name}: {speedup_key} {speedup} inconsistent with "
             f"{fast_key}/{full_key} = {fast / full:.3f}")


def validate(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{path} is not valid JSON: {err}")

    if not isinstance(doc, dict):
        fail(f"{path} is not a JSON object")
    if doc.get("version") != 1:
        fail(f"unexpected version {doc.get('version')!r}")
    if doc.get("benchmark") != "engine_steady_smoke":
        fail(f"unexpected benchmark {doc.get('benchmark')!r}")
    platforms = doc.get("platforms")
    if not isinstance(platforms, list) or not platforms:
        fail("platforms is missing, not a list, or empty")

    seen = set()
    for index, record in enumerate(platforms):
        if not isinstance(record, dict):
            fail(f"platform record {index} is not an object")
        for field, types in REQUIRED_FIELDS.items():
            if field not in record:
                fail(f"platform record {index} lacks '{field}'")
            value = record[field]
            if not isinstance(value, types) or isinstance(value, bool) \
                    and types is not bool:
                fail(f"platform record {index} field '{field}' has "
                     f"unexpected type: {value!r}")
        name = record["platform"]
        if name in seen:
            fail(f"duplicate platform record '{name}'")
        seen.add(name)
        if record["min_cycles"] < 256:
            fail(f"{name}: min_cycles {record['min_cycles']} < 256")
        if record["bodies"] <= 0:
            fail(f"{name}: bodies must be positive")
        if not 0 <= record["steady_hits"] <= record["bodies"]:
            fail(f"{name}: steady_hits {record['steady_hits']} out of "
                 f"range for {record['bodies']} bodies")
        # The gating bit: the fast path must be bit-identical to full
        # simulation on every platform.
        if record["fitness_identical"] is not True:
            fail(f"{name}: fitness_identical is false — the steady "
                 "fast path diverged from full simulation")
        check_speedup(record, "evals_per_sec_fast",
                      "evals_per_sec_full", "speedup")
        check_speedup(record, "evals_per_sec_fast_steady",
                      "evals_per_sec_full_steady", "speedup_steady")
        if record["coverage_cells"] <= 0:
            fail(f"{name}: coverage_cells must be positive")
        if record["evals_per_sec_fast_cov"] <= 0 or \
                record["coverage_overhead"] <= 0:
            fail(f"{name}: coverage datapoint must be positive")

    summary = ", ".join(
        f"{r['platform']} {r['speedup']:.2f}x/"
        f"{r['speedup_steady']:.2f}x" for r in platforms)
    print(f"check_bench: OK: {path}: {len(platforms)} platforms "
          f"(random/steady speedups: {summary})")
    return platforms


def diff_previous(platforms, previous_path):
    """Print an informational throughput diff; never fails the check."""
    try:
        with open(previous_path, encoding="utf-8") as handle:
            previous = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench: no usable previous report "
              f"({previous_path}: {err}); skipping the diff")
        return
    old_by_name = {r.get("platform"): r
                   for r in previous.get("platforms", [])
                   if isinstance(r, dict)}
    print(f"check_bench: throughput vs {previous_path} "
          "(informational, never gated):")
    for record in platforms:
        name = record["platform"]
        old = old_by_name.get(name)
        if old is None:
            print(f"  {name}: new platform (no previous record)")
            continue
        for key in ("evals_per_sec_fast", "evals_per_sec_full",
                    "evals_per_sec_fast_steady",
                    "evals_per_sec_full_steady",
                    "evals_per_sec_fast_cov"):
            new_v = record[key]
            old_v = old.get(key)
            if not isinstance(old_v, (int, float)) or old_v <= 0:
                continue
            rel = 100.0 * (new_v - old_v) / old_v
            print(f"  {name} {key}: {old_v:.0f} -> {new_v:.0f} "
                  f"({rel:+.1f}%)")
    dropped = sorted(set(old_by_name) -
                     {r["platform"] for r in platforms})
    for name in dropped:
        print(f"  {name}: present previously, missing now")


def drive(bench_binary):
    global ARTIFACT_SRC
    with tempfile.TemporaryDirectory(prefix="gest-bench-") as work:
        ARTIFACT_SRC = work
        report = os.path.join(work, "BENCH_engine.json")
        result = subprocess.run(
            [bench_binary, f"--smoke_json={report}"],
            cwd=work, capture_output=True, text=True)
        if result.returncode != 0:
            fail(f"bench smoke failed ({result.returncode}):\n"
                 f"{result.stdout}{result.stderr}")
        validate(report)
        ARTIFACT_SRC = None


def main(argv):
    if len(argv) == 3 and argv[1] == "--drive":
        drive(argv[2])
        return 0
    if len(argv) == 4 and argv[2] == "--previous":
        platforms = validate(argv[1])
        diff_previous(platforms, argv[3])
        return 0
    if len(argv) == 2 and not argv[1].startswith("-"):
        validate(argv[1])
        return 0
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
