#!/usr/bin/env python3
"""Validate gest's fitness-attribution and coverage-ledger artifacts.

Checks the `# gest-attribution v1` CSV format (sealed by a run with
<output attribution="true"/> or written by `gest attribute`) and the
`# gest-coverage v1` per-generation ledger:

  * the version comment, `# annotation` lines, the `# filler` line and
    the per-gene rows are well-formed, with one row per declared gene;
  * the sum_delta annotation equals the sum of the per-gene
    delta_fitness values to 1e-9, every delta equals
    baseline - fitness_without, and the additive story stays inside the
    interaction sanity band: |sum_delta - whole_ablation_delta| must
    not exceed max(1, |baseline_fitness|) (gene interactions explain
    the gap; a violation means the deltas are nonsense);
  * the JSON twin (<base>.json) carries the same annotations, genes,
    class and operand-bin aggregates;
  * coverage.csv declares the cell universe once and its rows are
    cumulative: cells_seen is non-decreasing, never exceeds
    cells_total, saturation_pct is recomputed exactly, per-class seen
    columns sum to cells_seen.

Usage:
  check_attribution.py <file.csv | run_dir>   validate artifacts
  check_attribution.py --drive <gest-binary>  run a tiny GA with
                                              coverage + attribution +
                                              --listen on, scrape
                                              /coverage while live,
                                              validate the sealed
                                              artifacts, `gest verify`
                                              the run, then cross-check
                                              `gest attribute` against
                                              the sealed result

With GEST_CHECK_ARTIFACT_DIR set, --drive copies its scratch run
directory there before exiting on failure, so CI can upload it.

Exit status 0 when the artifacts are valid; 1 with a message otherwise.
"""

import json
import math
import os
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

TOLERANCE = 1e-9

DRIVE_CONFIG = """<?xml version="1.0"?>
<gest_configuration>
  <ga population_size="24" individual_size="24" generations="200"
      seed="29" threads="2" fitness_cache_size="64"/>
  <library name="arm"/>
  <measurement class="SimIpcMeasurement">
    <config platform="xgene2"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="out" coverage="true" attribution="true"
          listen="127.0.0.1:0"/>
</gest_configuration>
"""

CLASS_TOKENS = ("short_int", "long_int", "float_simd", "mem", "branch",
                "nop")

ARTIFACT_SRC = None  # set by drive(); copied out by fail() on failure


def fail(message):
    if ARTIFACT_SRC is not None:
        dest = os.environ.get("GEST_CHECK_ARTIFACT_DIR")
        if dest:
            target = os.path.join(dest, "check_attribution")
            shutil.copytree(ARTIFACT_SRC, target, dirs_exist_ok=True)
            print(f"check_attribution: scratch copied to {target}",
                  file=sys.stderr)
    print(f"check_attribution: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


# ---------------------------------------------------------------------
# Attribution artifacts.

def parse_attribution_csv(path):
    """Parse one gest-attribution CSV into (annotations, filler, rows)."""
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    if not lines or lines[0] != "# gest-attribution v1":
        fail(f"{path} lacks the '# gest-attribution v1' version header")

    annotations = {}
    filler = None
    body_start = None
    for lineno, line in enumerate(lines[1:], start=2):
        if line.startswith("# annotation "):
            parts = line.split(" ", 3)
            if len(parts) != 4:
                fail(f"{path}:{lineno}: malformed annotation: {line}")
            annotations[parts[2]] = float(parts[3])
        elif line.startswith("# filler "):
            fields = line.split(" ")
            if len(fields) != 5 or fields[3] != "strategy":
                fail(f"{path}:{lineno}: malformed filler line: {line}")
            if fields[4] not in ("nop", "same-class"):
                fail(f"{path}:{lineno}: unknown filler strategy "
                     f"'{fields[4]}'")
            filler = (fields[2], fields[4])
        elif line.startswith("#"):
            fail(f"{path}:{lineno}: unexpected comment: {line}")
        else:
            if line != ("gene,instruction,class,operands,delta_fitness,"
                        "fitness_without"):
                fail(f"{path}:{lineno}: expected the column header, "
                     f"got: {line}")
            body_start = lineno
            break
    if body_start is None:
        fail(f"{path} has no column header row")
    if filler is None:
        fail(f"{path} has no '# filler' line")
    for key in ("individual_id", "baseline_fitness", "sum_delta",
                "whole_ablation_delta", "evaluations", "genes"):
        if key not in annotations:
            fail(f"{path} lacks the '{key}' annotation")

    rows = []
    for lineno, line in enumerate(lines[body_start:],
                                  start=body_start + 1):
        parts = line.split(",")
        if len(parts) != 6:
            fail(f"{path}:{lineno}: expected 6 columns: {line}")
        gene, instruction, cls, operands, delta, without = parts
        if int(gene) != len(rows):
            fail(f"{path}:{lineno}: gene index {gene} out of order")
        if not instruction:
            fail(f"{path}:{lineno}: empty instruction name")
        if cls not in CLASS_TOKENS:
            fail(f"{path}:{lineno}: unknown class token '{cls}'")
        delta, without = float(delta), float(without)
        if not math.isfinite(delta) or not math.isfinite(without):
            fail(f"{path}:{lineno}: non-finite delta/fitness")
        rows.append({"gene": int(gene), "instruction": instruction,
                     "class": cls, "operands": operands,
                     "delta_fitness": delta,
                     "fitness_without": without})
    return annotations, filler, rows


def check_attribution_semantics(path, annotations, rows):
    if len(rows) != int(annotations["genes"]):
        fail(f"{path}: {len(rows)} gene rows but the 'genes' "
             f"annotation says {int(annotations['genes'])}")
    baseline = annotations["baseline_fitness"]
    if not math.isfinite(baseline):
        fail(f"{path}: non-finite baseline_fitness")

    derived_sum = 0.0
    for row in rows:
        expected = baseline - row["fitness_without"]
        if abs(row["delta_fitness"] - expected) > TOLERANCE:
            fail(f"{path}: gene {row['gene']} delta "
                 f"{row['delta_fitness']!r} != baseline - "
                 f"fitness_without = {expected!r}")
        derived_sum += row["delta_fitness"]
    if abs(annotations["sum_delta"] - derived_sum) > TOLERANCE:
        fail(f"{path}: sum_delta {annotations['sum_delta']!r} "
             f"disagrees with the row sum {derived_sum!r}")

    # The interaction sanity band: per-gene deltas need not add up to
    # the joint ablation (interactions are the point), but the two must
    # stay commensurate with the baseline — a divergence beyond the
    # baseline's own magnitude means the deltas are garbage.
    band = max(1.0, abs(baseline))
    gap = abs(annotations["sum_delta"] -
              annotations["whole_ablation_delta"])
    if gap > band:
        fail(f"{path}: |sum_delta - whole_ablation_delta| = {gap!r} "
             f"exceeds the sanity band {band!r}")

    evals = int(annotations["evaluations"])
    if not 1 <= evals <= len(rows) + 2:
        fail(f"{path}: evaluations {evals} outside [1, genes+2]")


def check_attribution_json_twin(csv_path, annotations, filler, rows):
    json_path = os.path.splitext(csv_path)[0] + ".json"
    if not os.path.exists(json_path):
        fail(f"{csv_path} has no JSON twin {json_path}")
    try:
        with open(json_path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{json_path} invalid: {err}")
    if doc.get("version") != 1:
        fail(f"{json_path}: version != 1")
    for key in ("individual_id", "baseline_fitness", "sum_delta",
                "whole_ablation_delta", "evaluations", "genes"):
        if key not in doc:
            fail(f"{json_path}: missing '{key}'")
    for key in ("baseline_fitness", "sum_delta",
                "whole_ablation_delta"):
        if abs(doc[key] - annotations[key]) > TOLERANCE:
            fail(f"{json_path}: {key} disagrees with the CSV")
    if doc.get("filler", {}).get("instruction") != filler[0] or \
            doc.get("filler", {}).get("strategy") != filler[1]:
        fail(f"{json_path}: filler disagrees with the CSV")
    genes = doc["genes"]
    if len(genes) != len(rows):
        fail(f"{json_path}: {len(genes)} genes vs {len(rows)} CSV rows")
    for gene, row in zip(genes, rows):
        if gene.get("instruction") != row["instruction"] or \
                gene.get("class") != row["class"] or \
                abs(gene.get("delta_fitness", math.nan) -
                    row["delta_fitness"]) > TOLERANCE:
            fail(f"{json_path}: gene {row['gene']} disagrees with the "
                 f"CSV")
    for key in ("classes", "operand_bins", "top_genes"):
        if key not in doc or not isinstance(doc[key], list):
            fail(f"{json_path}: missing aggregate list '{key}'")
    class_genes = sum(c.get("genes", 0) for c in doc["classes"])
    if class_genes != len(rows):
        fail(f"{json_path}: class aggregates cover {class_genes} genes "
             f"of {len(rows)}")


def validate_attribution_file(path):
    annotations, filler, rows = parse_attribution_csv(path)
    check_attribution_semantics(path, annotations, rows)
    check_attribution_json_twin(path, annotations, filler, rows)
    print(f"check_attribution: OK: {path}: {len(rows)} genes, "
          f"filler {filler[0]} ({filler[1]}), sum_delta "
          f"{annotations['sum_delta']}")
    return annotations, rows


# ---------------------------------------------------------------------
# The coverage ledger.

def validate_coverage_csv(path):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    if not lines or lines[0] != "# gest-coverage v1":
        fail(f"{path} lacks the '# gest-coverage v1' version header")

    cells_total = None
    class_cells = {}
    body_start = None
    for lineno, line in enumerate(lines[1:], start=2):
        if line.startswith("# cells_total "):
            cells_total = int(line.split(" ")[2])
        elif line.startswith("# class "):
            fields = line.split(" ")
            if len(fields) != 5 or fields[3] != "cells":
                fail(f"{path}:{lineno}: malformed class line: {line}")
            class_cells[fields[2]] = int(fields[4])
        elif line.startswith("#"):
            fail(f"{path}:{lineno}: unexpected comment: {line}")
        else:
            expected = ("generation,cells_new,cells_seen,cells_total,"
                        "saturation_pct,novelty_rate," +
                        ",".join(f"seen_{t}" for t in CLASS_TOKENS))
            if line != expected:
                fail(f"{path}:{lineno}: expected the column header, "
                     f"got: {line}")
            body_start = lineno
            break
    if cells_total is None or cells_total <= 0:
        fail(f"{path}: missing or non-positive cells_total")
    if set(class_cells) != set(CLASS_TOKENS):
        fail(f"{path}: class universe lines disagree with the class "
             f"set: {sorted(class_cells)}")
    if sum(class_cells.values()) != cells_total:
        fail(f"{path}: per-class cells sum to "
             f"{sum(class_cells.values())}, not cells_total "
             f"{cells_total}")
    if body_start is None:
        fail(f"{path} has no column header row")

    rows = 0
    prev_generation = None
    prev_seen = 0
    for lineno, line in enumerate(lines[body_start:],
                                  start=body_start + 1):
        parts = line.split(",")
        if len(parts) != 6 + len(CLASS_TOKENS):
            fail(f"{path}:{lineno}: expected "
                 f"{6 + len(CLASS_TOKENS)} columns: {line}")
        generation, new, seen, total = (int(parts[0]), int(parts[1]),
                                        int(parts[2]), int(parts[3]))
        saturation, novelty = float(parts[4]), float(parts[5])
        per_class = [int(p) for p in parts[6:]]
        if prev_generation is not None and \
                generation <= prev_generation:
            fail(f"{path}:{lineno}: generations not increasing")
        if total != cells_total:
            fail(f"{path}:{lineno}: cells_total changed mid-run")
        if seen != prev_seen + new:
            fail(f"{path}:{lineno}: cells_seen {seen} != previous "
                 f"{prev_seen} + cells_new {new}")
        if seen > total:
            fail(f"{path}:{lineno}: cells_seen exceeds the universe")
        if abs(saturation - 100.0 * seen / total) > 1e-3:
            fail(f"{path}:{lineno}: saturation_pct {saturation} != "
                 f"100 * {seen} / {total}")
        if not 0.0 <= novelty <= 1.0:
            fail(f"{path}:{lineno}: novelty_rate {novelty} outside "
                 f"[0, 1]")
        if sum(per_class) != seen:
            fail(f"{path}:{lineno}: per-class seen sums to "
                 f"{sum(per_class)}, not cells_seen {seen}")
        for token, cls_seen in zip(CLASS_TOKENS, per_class):
            if cls_seen > class_cells[token]:
                fail(f"{path}:{lineno}: seen_{token} {cls_seen} "
                     f"exceeds its universe {class_cells[token]}")
        prev_generation, prev_seen = generation, seen
        rows += 1
    if rows == 0:
        fail(f"{path} has no data rows")
    print(f"check_attribution: OK: {path}: {rows} generations, "
          f"{prev_seen}/{cells_total} cells "
          f"({100.0 * prev_seen / cells_total:.1f}%)")
    return cells_total, prev_seen


def validate_run_dir(run_dir):
    attribution_dir = os.path.join(run_dir, "attribution")
    results = []
    if os.path.isdir(attribution_dir):
        for name in sorted(os.listdir(attribution_dir)):
            if name.endswith(".csv"):
                results.append(validate_attribution_file(
                    os.path.join(attribution_dir, name)))
    coverage_path = os.path.join(run_dir, "coverage.csv")
    coverage = None
    if os.path.exists(coverage_path):
        coverage = validate_coverage_csv(coverage_path)
    if not results and coverage is None:
        fail(f"{run_dir} holds neither attribution artifacts nor a "
             f"coverage.csv")
    return results, coverage


# ---------------------------------------------------------------------
# Drive mode.

def get_json(url, what):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            body = response.read().decode("utf-8", "replace")
    except (urllib.error.URLError, OSError, TimeoutError) as err:
        return None, str(err)
    try:
        return json.loads(body), None
    except json.JSONDecodeError as err:
        fail(f"{what}: GET {url} returned invalid JSON: {err}")


def check_live_coverage(doc):
    for key in ("generation", "cells_seen", "cells_total", "cells_new",
                "saturation_pct", "novelty_rate", "classes"):
        if key not in doc:
            fail(f"/coverage lacks '{key}': {doc}")
    if doc["cells_total"] <= 0 or doc["cells_seen"] <= 0:
        fail(f"/coverage reports an empty universe: {doc}")
    if doc["cells_seen"] > doc["cells_total"]:
        fail(f"/coverage cells_seen exceeds cells_total: {doc}")
    if len(doc["classes"]) != len(CLASS_TOKENS):
        fail(f"/coverage lists {len(doc['classes'])} classes")
    if sum(c["seen"] for c in doc["classes"]) != doc["cells_seen"]:
        fail(f"/coverage class seen sums disagree: {doc}")


def drive(gest_binary):
    global ARTIFACT_SRC
    # The child runs with cwd inside the scratch dir; keep a relative
    # binary path working.
    gest_binary = os.path.abspath(gest_binary)
    with tempfile.TemporaryDirectory(prefix="gest-attr-") as work:
        ARTIFACT_SRC = work
        config = os.path.join(work, "config.xml")
        with open(config, "w", encoding="utf-8") as handle:
            handle.write(DRIVE_CONFIG)
        process = subprocess.Popen(
            [gest_binary, "run", config, "--quiet"], cwd=work,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            out = os.path.join(work, "out")
            status_path = os.path.join(out, "status.json")
            listen = None
            for _ in range(600):
                if process.poll() is not None:
                    break
                try:
                    with open(status_path, encoding="utf-8") as handle:
                        listen = json.load(handle).get("listen")
                except (OSError, json.JSONDecodeError):
                    listen = None
                if listen:
                    break
                time.sleep(0.05)
            if not listen:
                stdout, stderr = process.communicate(timeout=60)
                fail("no listen address appeared in status.json; "
                     f"gest exited {process.returncode}:\n"
                     f"{stdout}{stderr}")

            # /coverage must render live while the run is in flight.
            live_passes = 0
            last_seen = 0
            while process.poll() is None and live_passes < 10:
                doc, err = get_json(f"http://{listen}/coverage",
                                    "/coverage")
                if doc is None:
                    # The run can complete between the poll and the
                    # GET; tolerate only if it did.
                    time.sleep(0.5)
                    if process.poll() is None:
                        fail(f"/coverage unreachable while the run is "
                             f"alive: {err}")
                    break
                if doc.get("cells_total", 0) > 0:
                    check_live_coverage(doc)
                    if doc["cells_seen"] < last_seen:
                        fail("/coverage cells_seen decreased between "
                             "scrapes")
                    last_seen = doc["cells_seen"]
                    live_passes += 1
                time.sleep(0.1)
            stdout, stderr = process.communicate(timeout=120)
            if process.returncode != 0:
                fail(f"gest run failed ({process.returncode}):\n"
                     f"{stdout}{stderr}")
            if live_passes == 0:
                fail("the run finished before a single live /coverage "
                     "pass — raise generations in DRIVE_CONFIG")
            print(f"check_attribution: OK: {live_passes} live "
                  f"/coverage passes, final cells_seen {last_seen}")
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

        results, coverage = validate_run_dir(out)
        if not results:
            fail("the run sealed no attribution artifacts")
        if coverage is None:
            fail("the run wrote no coverage.csv")
        if coverage[1] < last_seen:
            fail(f"coverage.csv final cells_seen {coverage[1]} below "
                 f"the live scrape's {last_seen}")

        # The manifest must label and checksum the new artifacts.
        with open(os.path.join(out, "manifest.json"),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        settings = manifest.get("settings", {})
        if settings.get("record_coverage") is not True or \
                settings.get("record_attribution") is not True:
            fail("manifest settings lack record_coverage/"
                 "record_attribution")
        kinds = {entry["path"]: entry["kind"]
                 for entry in manifest.get("artifacts", [])}
        if kinds.get("coverage.csv") != "coverage":
            fail(f"manifest labels coverage.csv as "
                 f"{kinds.get('coverage.csv')!r}")
        attribution_kinds = [kind for path, kind in kinds.items()
                             if path.startswith("attribution/")]
        if not attribution_kinds or \
                set(attribution_kinds) != {"attribution"}:
            fail(f"manifest attribution kinds wrong: "
                 f"{attribution_kinds}")

        result = subprocess.run([gest_binary, "verify", out, "--quiet"],
                                cwd=work, capture_output=True, text=True)
        if result.returncode != 0:
            fail(f"gest verify failed ({result.returncode}):\n"
                 f"{result.stdout}{result.stderr}")
        print("check_attribution: OK: gest verify replayed the sealed "
              "run")

        # `gest attribute` after the fact must reproduce the sealed
        # attribution exactly (deterministic simulated measurement).
        result = subprocess.run(
            [gest_binary, "attribute", config, out, "--out",
             os.path.join(work, "re_attr"), "--quiet"],
            cwd=work, capture_output=True, text=True)
        if result.returncode != 0:
            fail(f"gest attribute failed ({result.returncode}):\n"
                 f"{result.stdout}{result.stderr}")
        re_csvs = [name
                   for name in sorted(os.listdir(
                       os.path.join(work, "re_attr")))
                   if name.endswith(".csv")]
        if len(re_csvs) != 1:
            fail(f"expected one re-attribution CSV, found {re_csvs}")
        re_annotations, re_rows = validate_attribution_file(
            os.path.join(work, "re_attr", re_csvs[0]))

        sealed = {int(a["individual_id"]): (a, rows)
                  for a, rows in results}
        champion = int(re_annotations["individual_id"])
        if champion not in sealed:
            fail(f"gest attribute picked individual {champion}, which "
                 f"the run never sealed ({sorted(sealed)})")
        sealed_annotations, sealed_rows = sealed[champion]
        for key in ("baseline_fitness", "sum_delta",
                    "whole_ablation_delta"):
            if abs(re_annotations[key] -
                   sealed_annotations[key]) > TOLERANCE:
                fail(f"re-attribution {key} "
                     f"{re_annotations[key]!r} disagrees with the "
                     f"sealed {sealed_annotations[key]!r}")
        for sealed_row, re_row in zip(sealed_rows, re_rows):
            if abs(sealed_row["delta_fitness"] -
                   re_row["delta_fitness"]) > TOLERANCE:
                fail(f"re-attribution gene {re_row['gene']} delta "
                     f"disagrees with the sealed artifact")
        print("check_attribution: OK: gest attribute reproduced the "
              "sealed attribution bit-for-bit")
        ARTIFACT_SRC = None


def main(argv):
    if len(argv) == 3 and argv[1] == "--drive":
        drive(argv[2])
        return 0
    if len(argv) == 2 and not argv[1].startswith("-"):
        if os.path.isdir(argv[1]):
            validate_run_dir(argv[1])
        else:
            validate_attribution_file(argv[1])
        return 0
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
