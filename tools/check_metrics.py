#!/usr/bin/env python3
"""Validate the live telemetry endpoints served by a gest run.

Checks the whole scrape surface (docs/observability.md, "Live
endpoints"):

  * /status and /history are valid JSON with the documented keys;
    history generations count up from 0;
  * /champion carries the best individual's id/fitness/code;
  * /metrics is well-formed Prometheus text exposition (HELP/TYPE
    comments, one sample per line, histogram buckets cumulative and
    consistent with _count);
  * /events is well-framed SSE: "event:"/"id:"/"data:" lines, blank-line
    separated, each data payload valid JSON with a generation number;
  * counters scraped from /metrics reappear in the run's final
    stats.txt with values >= the last scraped value (counters are
    monotonic and the artifacts outlive the server).

Usage:
  check_metrics.py <url>                  one validation pass against a
                                          live server (no file checks)
  check_metrics.py --drive <gest-binary>  run a GA with --listen
                                          127.0.0.1:0 in a temp dir,
                                          scrape it while it runs, then
                                          cross-check stats.txt

Exit status 0 when everything validates; 1 with a message otherwise.
On failure with GEST_CHECK_ARTIFACT_DIR set, the scratch directory is
copied there for post-mortem.
"""

import json
import os
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

ARTIFACT_SRC = None  # set by drive(); copied out by fail() on failure

DRIVE_CONFIG = """<?xml version="1.0"?>
<gest_configuration>
  <ga population_size="24" individual_size="24" generations="200"
      seed="13" threads="2" fitness_cache_size="64"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a15"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="out" listen="127.0.0.1:0"/>
</gest_configuration>
"""

STATUS_KEYS = (
    "state", "generation", "total_generations", "best_fitness",
    "average_fitness", "diversity", "evaluations", "cache_hit_rate",
    "evals_per_sec", "elapsed_seconds", "eta_seconds", "steady_hits",
    "cycles_simulated", "cycles_tiled", "listen",
)

HISTORY_KEYS = (
    "generation", "best_fitness", "average_fitness", "best_id",
    "diversity", "cache_hits", "cache_misses", "evaluation_ms",
)

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$")


def fail(message):
    if ARTIFACT_SRC is not None:
        dest = os.environ.get("GEST_CHECK_ARTIFACT_DIR")
        if dest:
            target = os.path.join(dest, "check_metrics")
            shutil.copytree(ARTIFACT_SRC, target, dirs_exist_ok=True)
            print(f"check_metrics: scratch copied to {target}",
                  file=sys.stderr)
    print(f"check_metrics: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class ServerGone(Exception):
    """A GET failed at the transport level (refused/reset/timeout).

    During --drive this is usually the normal end-of-run race: the
    run completed between the process-aliveness check and the GET, so
    the server is already down. The drive loop decides whether that
    is benign; everywhere else it is converted to fail().
    """


def get(url, timeout=5):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, TimeoutError) as err:
        return None, str(err)


def get_json(url, what):
    status, body = get(url)
    if status is None:
        raise ServerGone(f"{what}: GET {url} failed: {body}")
    if status != 200:
        fail(f"{what}: GET {url} failed: {body}")
    try:
        return json.loads(body)
    except json.JSONDecodeError as err:
        fail(f"{what} is not valid JSON: {err}\n{body[:400]}")


def check_status(doc, require_listen):
    if not isinstance(doc, dict):
        fail(f"/status is not a JSON object: {doc!r}")
    for key in STATUS_KEYS:
        if key not in doc:
            fail(f"/status lacks key '{key}': {sorted(doc)}")
    if doc["state"] not in ("running", "completed"):
        fail(f"/status state is {doc['state']!r}")
    if require_listen and not doc["listen"]:
        fail("/status 'listen' is empty although the server is up")


def check_history(doc):
    if not isinstance(doc, list):
        fail(f"/history is not a JSON array: {type(doc)}")
    for index, row in enumerate(doc):
        for key in HISTORY_KEYS:
            if key not in row:
                fail(f"/history row {index} lacks '{key}': {row}")
        if row["generation"] != index:
            fail(f"/history row {index} has generation "
                 f"{row['generation']} (rows must count up from 0)")
    return len(doc)


def check_champion(doc, expect_present):
    if not isinstance(doc, dict):
        fail(f"/champion is not a JSON object: {doc!r}")
    if not expect_present:
        return
    for key in ("generation", "id", "fitness", "code"):
        if key not in doc:
            fail(f"/champion lacks key '{key}': {sorted(doc)}")
    if not isinstance(doc["code"], list) or not doc["code"]:
        fail("/champion 'code' is empty — champions always have a body")


def check_metrics_text(text):
    """Validate Prometheus exposition; return {counter_name: value}."""
    typed = {}
    counters = {}
    histograms = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram"):
                fail(f"/metrics line {lineno}: bad TYPE comment: {line}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            fail(f"/metrics line {lineno}: unexpected comment: {line}")
        match = SAMPLE_RE.match(line)
        if not match:
            fail(f"/metrics line {lineno}: not a valid sample: {line!r}")
        name, labels, value = match.groups()
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            fail(f"/metrics line {lineno}: sample '{name}' has no "
                 "preceding # TYPE")
        kind = typed.get(name, typed.get(base))
        if kind == "counter":
            counters[name] = float(value)
        elif kind == "histogram" and name.endswith("_bucket"):
            le = re.search(r'le="([^"]+)"', labels or "")
            if not le:
                fail(f"/metrics line {lineno}: bucket without le label")
            histograms.setdefault(base, []).append(
                (le.group(1), float(value)))
        elif kind == "histogram" and name.endswith("_count"):
            histograms.setdefault(base, []).append(
                ("__count__", float(value)))
    for base, rows in histograms.items():
        buckets = [v for le, v in rows if le != "__count__"]
        counts = [v for le, v in rows if le == "__count__"]
        if any(b > a for a, b in zip(buckets[1:], buckets)):
            fail(f"/metrics histogram {base}: buckets not cumulative: "
                 f"{buckets}")
        if not buckets or not counts or buckets[-1] != counts[0]:
            fail(f"/metrics histogram {base}: le=+Inf bucket "
                 f"{buckets[-1] if buckets else None} != _count "
                 f"{counts[0] if counts else None}")
    if not counters:
        fail("/metrics exposes no counters at all")
    return counters


def check_sse(raw):
    """Validate SSE framing; return the number of generation events."""
    if not raw.startswith("retry:"):
        fail(f"SSE stream does not open with a retry line: {raw[:80]!r}")
    generations = []
    for block in raw.split("\n\n"):
        block = block.strip("\n")
        if not block or block.startswith("retry:"):
            continue
        fields = {}
        for line in block.split("\n"):
            if ":" not in line:
                fail(f"SSE block line without a colon: {line!r}")
            key, _, value = line.partition(":")
            fields[key] = value.strip()
        if fields.get("event") == "end":
            continue
        if fields.get("event") == "alert":
            # Health-watchdog frames: keyless (no id line — a resumed
            # client must get them redelivered) JSON alert objects.
            if "id" in fields:
                fail(f"SSE alert frame carries an id: {block!r}")
            try:
                alert = json.loads(fields.get("data", ""))
            except json.JSONDecodeError as err:
                fail(f"SSE alert data is not JSON: {err}")
            if "rule" not in alert:
                fail(f"SSE alert lacks 'rule': {alert!r}")
            continue
        if fields.get("event") != "generation":
            fail(f"SSE block with unexpected event: {fields!r}")
        for key in ("id", "data"):
            if key not in fields:
                fail(f"SSE generation block lacks '{key}': {block!r}")
        try:
            payload = json.loads(fields["data"])
        except json.JSONDecodeError as err:
            fail(f"SSE data is not JSON: {err}: {fields['data']!r}")
        if payload.get("generation") != int(fields["id"]):
            fail(f"SSE id {fields['id']} != data generation "
                 f"{payload.get('generation')}")
        generations.append(payload["generation"])
    if generations != sorted(generations):
        fail(f"SSE generations out of order: {generations}")
    return len(generations)


class SseReader(threading.Thread):
    """Drains /events over a raw socket until the server closes it."""

    def __init__(self, host, port):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.raw = b""
        self.error = None

    def run(self):
        try:
            with socket.create_connection(
                    (self.host, self.port), timeout=60) as conn:
                conn.sendall(
                    f"GET /events HTTP/1.1\r\nHost: {self.host}\r\n"
                    "Connection: close\r\n\r\n".encode())
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        return
                    self.raw += chunk
        except OSError as err:
            self.error = str(err)

    def body(self):
        text = self.raw.decode("utf-8", errors="replace")
        head, sep, body = text.partition("\r\n\r\n")
        if not sep:
            fail(f"SSE response has no header/body separator: {text[:200]!r}")
        if "text/event-stream" not in head:
            fail(f"SSE response is not text/event-stream: {head!r}")
        return body


def validate_endpoints(base, require_listen):
    """One scrape pass; returns (generations_seen, counters)."""
    status_doc = get_json(base + "/status", "/status")
    check_status(status_doc, require_listen)
    rows = check_history(get_json(base + "/history", "/history"))
    check_champion(get_json(base + "/champion", "/champion"), rows > 0)
    code, metrics_text = get(base + "/metrics")
    if code is None:
        raise ServerGone(f"/metrics: {metrics_text}")
    if code != 200:
        fail(f"/metrics failed: {metrics_text}")
    counters = check_metrics_text(metrics_text)
    code, health = get(base + "/healthz")
    if code is None:
        raise ServerGone(f"/healthz: {health}")
    if code != 200 or json.loads(health).get("status") != "ok":
        fail(f"/healthz unhealthy: {code} {health!r}")
    return rows, counters


def stats_txt_counters(path):
    """Parse stats.txt into {prometheus_counter_name: value}."""
    out = {}
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    for line in lines:
        parts = line.split()
        if len(parts) < 2 or line.startswith("-") or "::" in parts[0]:
            continue
        try:
            value = float(parts[1])
        except ValueError:
            continue
        mangled = "gest_" + re.sub(r"[^a-zA-Z0-9]", "_", parts[0])
        out[mangled + "_total"] = value
    return out


def cross_check(scraped, stats_path):
    """Scraped counters must reappear in stats.txt, never smaller."""
    final = stats_txt_counters(stats_path)
    for name, value in scraped.items():
        if name not in final:
            fail(f"counter {name} was scraped from /metrics but has no "
                 f"counterpart in {stats_path}")
        if final[name] < value:
            fail(f"counter {name}: final stats.txt value {final[name]} "
                 f"< last scraped value {value} (counters are "
                 "monotonic; the artifacts must agree with the scrape)")
    print(f"check_metrics: OK: {len(scraped)} scraped counters "
          f"cross-checked against stats.txt")


def drive(gest_binary):
    global ARTIFACT_SRC
    # The run executes with cwd inside the scratch dir; a relative
    # binary path (e.g. build/tools/gest) must survive the chdir.
    gest_binary = os.path.abspath(gest_binary)
    with tempfile.TemporaryDirectory(prefix="gest-metrics-") as work:
        ARTIFACT_SRC = work
        config = os.path.join(work, "config.xml")
        with open(config, "w", encoding="utf-8") as handle:
            handle.write(DRIVE_CONFIG)
        process = subprocess.Popen(
            [gest_binary, "run", config, "--quiet"], cwd=work,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            # The bound (ephemeral) port surfaces in the status.json
            # heartbeat after the first generation.
            status_path = os.path.join(work, "out", "status.json")
            listen = None
            for _ in range(600):
                if process.poll() is not None:
                    break
                try:
                    with open(status_path, encoding="utf-8") as handle:
                        listen = json.load(handle).get("listen")
                except (OSError, json.JSONDecodeError):
                    listen = None
                if listen:
                    break
                time.sleep(0.05)
            if not listen:
                out, err = process.communicate(timeout=60)
                fail("no listen address appeared in status.json; "
                     f"gest exited {process.returncode}:\n{out}{err}")

            base = f"http://{listen}"
            host, port = listen.rsplit(":", 1)
            sse = SseReader(host, int(port))
            sse.start()

            scraped = {}
            passes = 0
            while process.poll() is None and passes < 50:
                try:
                    rows, counters = validate_endpoints(
                        base, require_listen=True)
                except ServerGone as err:
                    # The run can complete between the aliveness check
                    # above and the GET; a refused connection is only a
                    # failure if the run is still going after a grace
                    # period.
                    time.sleep(0.5)
                    if process.poll() is None:
                        fail("server vanished while the run is still "
                             f"alive: {err}")
                    break
                scraped.update(counters)
                passes += 1
                time.sleep(0.2)
            out, err = process.communicate(timeout=120)
            if process.returncode != 0:
                fail(f"gest run failed ({process.returncode}):\n"
                     f"{out}{err}")
            if passes == 0:
                fail("the run finished before a single scrape pass — "
                     "raise generations in DRIVE_CONFIG")

            sse.join(timeout=30)
            if sse.error:
                fail(f"SSE read failed: {sse.error}")
            events = check_sse(sse.body())
            if events == 0:
                fail("SSE stream carried no generation events")

            cross_check(scraped,
                        os.path.join(work, "out", "stats.txt"))
            print(f"check_metrics: OK: {passes} scrape passes, "
                  f"{events} SSE generation events, run exit 0")
            ARTIFACT_SRC = None
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()


def main(argv):
    if len(argv) == 3 and argv[1] == "--drive":
        drive(argv[2])
        return 0
    if len(argv) == 2 and not argv[1].startswith("-"):
        base = argv[1].rstrip("/")
        if not base.startswith("http://"):
            base = "http://" + base
        try:
            rows, counters = validate_endpoints(
                base, require_listen=False)
        except ServerGone as err:
            fail(str(err))
        print(f"check_metrics: OK: {base}: {rows} history rows, "
              f"{len(counters)} counters")
        return 0
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
