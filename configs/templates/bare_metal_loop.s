// Bare-metal loop template (§III.B.2). Registers are initialized with
// checkerboard patterns, the memory base register x10 points at a
// cache-resident buffer, and the GA-generated individual replaces the
// marker line inside the loop body.
.text
.globl _start
_start:
    ldr x0, =0xAAAAAAAAAAAAAAAA
    mov x2, x0
    mov x3, x0
    mov x4, x0
    mov x5, x0
    mov x6, x0
    mov x7, x0
    mov x8, x0
    mov x9, x0
    dup v0.2d, x0
    dup v1.2d, x0
    dup v2.2d, x0
    dup v3.2d, x0
    dup v4.2d, x0
    dup v5.2d, x0
    dup v6.2d, x0
    dup v7.2d, x0
    adrp x10, buffer
    add x10, x10, :lo12:buffer
loop_start:
    #loop_code
    b loop_start
.bss
.align 6
buffer:
    .zero 4096
