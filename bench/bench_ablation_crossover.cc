/**
 * @file
 * Ablation — one-point vs uniform crossover (§III.A).
 *
 * The paper prefers one-point crossover because it preserves parental
 * instruction order, which matters for power and dI/dt searches. This
 * bench runs both operators with identical budgets on two searches and
 * compares final fitness and convergence speed.
 */

#include <cstdio>

#include "common.hh"
#include "fitness/fitness.hh"

using namespace gest;

namespace {

struct Outcome
{
    double finalFitness = 0.0;
    int generationsTo95Pct = -1;
};

Outcome
runSearch(const std::shared_ptr<const platform::Platform>& plat,
          bench::Target target, core::CrossoverOperator crossover,
          int individual_size, const bench::Scale& scale,
          std::uint64_t seed)
{
    core::GaParams params =
        bench::virusParams(individual_size, scale, seed);
    params.crossover = crossover;
    const core::Individual best =
        bench::evolveVirus(plat, target, params);

    // Re-run to recover history (evolveVirus is deterministic).
    const auto& lib = plat->library();
    std::unique_ptr<measure::Measurement> meas;
    if (target == bench::Target::Power)
        meas = std::make_unique<measure::SimPowerMeasurement>(lib, plat);
    else
        meas = std::make_unique<measure::SimVoltageNoiseMeasurement>(
            lib, plat);
    fitness::DefaultFitness fit;
    core::Engine engine(params, lib, *meas, fit);
    engine.run();

    Outcome outcome;
    outcome.finalFitness = engine.bestEver().fitness;
    const double threshold = outcome.finalFitness * 0.95;
    for (const core::GenerationRecord& rec : engine.history()) {
        if (rec.bestFitness >= threshold) {
            outcome.generationsTo95Pct = rec.generation;
            break;
        }
    }
    (void)best;
    return outcome;
}

} // namespace

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv({40, 40});
    bench::printHeader("Ablation",
                       "one-point vs uniform crossover (paper "
                       "prefers one-point)",
                       scale);

    struct Case
    {
        const char* name;
        std::shared_ptr<const platform::Platform> plat;
        bench::Target target;
        int size;
    };
    const Case cases[] = {
        {"A15 power search", platform::cortexA15Platform(),
         bench::Target::Power, 50},
        {"Athlon dI/dt search", platform::athlonX4Platform(),
         bench::Target::VoltageNoise, 47},
    };

    std::printf("%-22s %-10s %14s %18s\n", "search", "crossover",
                "final_fitness", "gens_to_95pct");
    for (const Case& c : cases) {
        double one_point_fitness = 0.0;
        double uniform_fitness = 0.0;
        for (auto op : {core::CrossoverOperator::OnePoint,
                        core::CrossoverOperator::Uniform}) {
            // Average over three seeds to damp GA noise.
            double fitness_sum = 0.0;
            double gens_sum = 0.0;
            for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
                const Outcome outcome = runSearch(
                    c.plat, c.target, op, c.size, scale, seed);
                fitness_sum += outcome.finalFitness;
                gens_sum += outcome.generationsTo95Pct;
            }
            std::printf("%-22s %-10s %14.4f %18.1f\n", c.name,
                        core::toString(op), fitness_sum / 3.0,
                        gens_sum / 3.0);
            if (op == core::CrossoverOperator::OnePoint)
                one_point_fitness = fitness_sum / 3.0;
            else
                uniform_fitness = fitness_sum / 3.0;
        }
        std::printf("  -> one-point/uniform final fitness: %.3f "
                    "(paper: one-point converges faster by "
                    "preserving instruction order)\n",
                    one_point_fitness / uniform_fitness);
    }
    return 0;
}
