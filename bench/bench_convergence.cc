/**
 * @file
 * §IV runtime claim — convergence behaviour and projected wall-clock.
 *
 * The paper: "GeST produces stress-tests that exceed significantly
 * conventional workloads after 70-100 generations. Given 50 individuals
 * per population and 5 seconds per measurement the runtime is
 * approximately 7 hours." This bench tracks best-fitness per generation
 * on the Cortex-A15 power search, reports the generation at which the
 * GA first exceeds the best conventional workload, and projects the
 * wall-clock a real 5 s/measurement deployment would need.
 */

#include <cstdio>

#include "common.hh"
#include "fitness/fitness.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    bench::Scale scale = bench::scaleFromEnv({50, 100});
    bench::printHeader("Convergence (§IV)",
                       "Generations to beat the best conventional "
                       "workload (Cortex-A15 power)",
                       scale);

    const auto plat = platform::cortexA15Platform();
    const auto& lib = plat->library();

    double best_baseline = 0.0;
    std::string best_name;
    for (const auto& w : workloads::armBareMetalBaselines(lib)) {
        const double watts =
            plat->evaluate(w.code, lib).chipPowerWatts;
        if (watts > best_baseline) {
            best_baseline = watts;
            best_name = w.name;
        }
    }

    measure::SimPowerMeasurement meas(lib, plat);
    fitness::DefaultFitness fit;
    core::Engine engine(bench::virusParams(50, scale, 1001), lib, meas,
                        fit);
    engine.run();

    int first_exceed = -1;
    int first_exceed_10pct = -1;
    std::printf("gen  best_power_W  vs_best_baseline  diversity\n");
    for (const core::GenerationRecord& rec : engine.history()) {
        if (rec.generation % 10 == 0 ||
            rec.generation + 1 ==
                static_cast<int>(engine.history().size()))
            std::printf("%3d  %12.3f  %15.3f  %9.3f\n", rec.generation,
                        rec.bestFitness,
                        rec.bestFitness / best_baseline,
                        rec.diversity);
        if (first_exceed < 0 && rec.bestFitness > best_baseline)
            first_exceed = rec.generation;
        if (first_exceed_10pct < 0 &&
            rec.bestFitness > best_baseline * 1.10)
            first_exceed_10pct = rec.generation;
    }

    bench::printNote("");
    std::printf("best conventional workload: %s at %.3f W\n",
                best_name.c_str(), best_baseline);
    std::printf("first generation exceeding it: %d; exceeding it by "
                "10%%: %d (paper: significant margins within 70-100 "
                "generations)\n",
                first_exceed, first_exceed_10pct);

    const double measurements =
        static_cast<double>(engine.evaluations());
    std::printf("measurements performed: %.0f; at the paper's 5 "
                "s/measurement this run would take %.1f hours "
                "(paper: ~7 h for 100 generations x 50 "
                "individuals)\n",
                measurements, measurements * 5.0 / 3600.0);
    return 0;
}
