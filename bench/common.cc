#include "common.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace gest {
namespace bench {

Scale
scaleFromEnv(Scale defaults)
{
    Scale scale = defaults;
    if (const char* pop = std::getenv("GEST_BENCH_POP"))
        scale.population = std::atoi(pop);
    if (const char* gens = std::getenv("GEST_BENCH_GENS"))
        scale.generations = std::atoi(gens);
    if (scale.population < 2 || scale.generations < 1)
        fatal("bad GEST_BENCH_POP/GEST_BENCH_GENS values");
    return scale;
}

core::GaParams
virusParams(int individual_size, const Scale& scale, std::uint64_t seed)
{
    core::GaParams params;
    params.populationSize = scale.population;
    params.individualSize = individual_size;
    params.mutationRate =
        core::GaParams::mutationRateForSize(individual_size);
    params.generations = scale.generations;
    params.tournamentSize = 5;
    params.seed = seed;
    return params;
}

core::Individual
evolveVirus(const std::shared_ptr<const platform::Platform>& plat,
            Target target, const core::GaParams& params)
{
    const isa::InstructionLibrary& lib = plat->library();
    std::unique_ptr<measure::Measurement> meas;
    switch (target) {
      case Target::Power:
        meas = std::make_unique<measure::SimPowerMeasurement>(lib, plat);
        break;
      case Target::Temperature:
        meas = std::make_unique<measure::SimTemperatureMeasurement>(lib,
                                                                    plat);
        break;
      case Target::Ipc:
        meas = std::make_unique<measure::SimIpcMeasurement>(lib, plat);
        break;
      case Target::VoltageNoise:
        meas = std::make_unique<measure::SimVoltageNoiseMeasurement>(
            lib, plat);
        break;
    }
    fitness::DefaultFitness fit;
    core::Engine engine(params, lib, *meas, fit);
    engine.run();
    return engine.bestEver();
}

core::Individual
a15PowerVirus(const Scale& scale)
{
    return evolveVirus(platform::cortexA15Platform(), Target::Power,
                       virusParams(50, scale, 1001));
}

core::Individual
a7PowerVirus(const Scale& scale)
{
    return evolveVirus(platform::cortexA7Platform(), Target::Power,
                       virusParams(50, scale, 1002));
}

core::Individual
xgene2PowerVirus(const Scale& scale)
{
    return evolveVirus(platform::xgene2Platform(), Target::Temperature,
                       virusParams(50, scale, 1003));
}

core::Individual
xgene2IpcVirus(const Scale& scale)
{
    return evolveVirus(platform::xgene2Platform(), Target::Ipc,
                       virusParams(50, scale, 1004));
}

core::Individual
xgene2SimplePowerVirus(const Scale& scale)
{
    const auto plat = platform::xgene2Platform();
    const isa::InstructionLibrary& lib = plat->library();
    measure::SimTemperatureMeasurement meas(lib, plat);
    fitness::TemperatureSimplicityFitness fit(plat->idleTempC(),
                                              plat->chip().tjMaxC);
    core::Engine engine(virusParams(50, scale, 1005), lib, meas, fit);
    engine.run();
    return engine.bestEver();
}

core::Individual
athlonDidtVirus(const Scale& scale)
{
    const auto plat = platform::athlonX4Platform();
    const int loop_len = core::GaParams::didtLoopLength(
        1.5, plat->cpu().freqGHz,
        plat->pdnModel()->config().resonanceHz());
    return evolveVirus(plat, Target::VoltageNoise,
                       virusParams(loop_len, scale, 1006));
}

void
printHeader(const std::string& experiment,
            const std::string& description, const Scale& scale)
{
    std::printf("================================================"
                "======================\n");
    std::printf("%s — %s\n", experiment.c_str(), description.c_str());
    std::printf("GA scale: population=%d generations=%d "
                "(override with GEST_BENCH_POP / GEST_BENCH_GENS)\n",
                scale.population, scale.generations);
    std::printf("------------------------------------------------"
                "----------------------\n");
}

void
printBar(const std::string& name, double value, double baseline,
         const std::string& unit)
{
    const double relative = baseline != 0.0 ? value / baseline : 0.0;
    const int width = static_cast<int>(relative * 40.0);
    std::string bar;
    for (int i = 0; i < width && i < 70; ++i)
        bar += '#';
    std::printf("%-26s %8.3f %-4s  %5.3f  %s\n", name.c_str(), value,
                unit.c_str(), relative, bar.c_str());
}

void
printNote(const std::string& text)
{
    std::printf("%s\n", text.c_str());
}

} // namespace bench
} // namespace gest
