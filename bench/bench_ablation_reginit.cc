/**
 * @file
 * Ablation — register/memory initialization patterns (§III.B.2).
 *
 * The paper: "register values have considerable effect on power
 * consumption, so they must be initialized judiciously... checkerboard
 * patterns (e.g. 0xAAAAAAAA) increase bit switching". This bench
 * evaluates the same A15 power virus under checkerboard, zero,
 * all-ones and alternating-pair initialization.
 */

#include <cstdio>

#include "common.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv({40, 40});
    bench::printHeader("Ablation",
                       "register initialization patterns (Cortex-A15 "
                       "power virus)",
                       scale);

    const core::Individual virus = bench::a15PowerVirus(scale);
    const auto base = platform::cortexA15Platform();

    struct Pattern
    {
        const char* name;
        std::uint64_t value;
        std::uint8_t mem;
    };
    const Pattern patterns[] = {
        {"checkerboard 0xAA..", 0xaaaaaaaaaaaaaaaaULL, 0x5a},
        {"zeros", 0x0ULL, 0x00},
        {"all-ones", 0xffffffffffffffffULL, 0xff},
        {"pairs 0xCC..", 0xccccccccccccccccULL, 0x33},
    };

    double checkerboard_power = 0.0;
    double zero_power = 0.0;
    std::printf("%-22s %12s %14s\n", "pattern", "chip_power_W",
                "toggle_bits");
    for (const Pattern& pattern : patterns) {
        platform::Platform plat("a15-init", base->cpu(), base->energy(),
                                base->thermalModel().config(),
                                base->chip(), isa::armLikeLibrary());
        arch::InitState init;
        init.intPattern = pattern.value;
        init.vecPattern = pattern.value;
        init.memPattern = pattern.mem;
        plat.setInitState(init);

        const platform::Evaluation eval =
            plat.evaluate(virus.code, plat.library());
        std::printf("%-22s %12.4f %14llu\n", pattern.name,
                    eval.chipPowerWatts,
                    static_cast<unsigned long long>(
                        eval.sim.totalToggleBits));
        if (pattern.value == 0xaaaaaaaaaaaaaaaaULL)
            checkerboard_power = eval.chipPowerWatts;
        if (pattern.value == 0)
            zero_power = eval.chipPowerWatts;
    }

    bench::printNote("");
    std::printf("checkerboard vs zeros: %.2f%% more chip power "
                "(paper: initialization matters; checkerboard "
                "maximizes switching)\n",
                (checkerboard_power / zero_power - 1.0) * 100.0);
    return 0;
}
