/**
 * @file
 * Figure 5 — Cortex-A15 power results, normalized to coremark.
 *
 * Series: the A15 GA power virus, the hand-written A15 stress-test, the
 * A7 GA virus run on the A15 (cross-virus transfer), and the bare-metal
 * benchmarks coremark / imdct / fdct. Paper shape: the GA virus is the
 * highest bar, above the manual stress-test by >= 10%, and the A7 virus
 * is a mediocre A15 stressor.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv();
    bench::printHeader("Figure 5",
                       "Cortex-A15 power, normalized to coremark",
                       scale);

    const auto a15 = platform::cortexA15Platform();
    const auto& lib = a15->library();

    const core::Individual virus15 = bench::a15PowerVirus(scale);
    const core::Individual virus7 = bench::a7PowerVirus(scale);

    struct Row
    {
        std::string name;
        double watts;
    };
    std::vector<Row> rows;
    rows.push_back({"A15_GA_virus",
                    a15->evaluate(virus15.code, lib).chipPowerWatts});
    rows.push_back({"A7_GA_virus(cross)",
                    a15->evaluate(virus7.code, lib).chipPowerWatts});
    for (const auto& w : workloads::armBareMetalBaselines(lib)) {
        if (w.name == "A7manual_stress_test")
            continue; // Figure 5 shows the A15's own manual test
        rows.push_back({w.name,
                        a15->evaluate(w.code, lib).chipPowerWatts});
    }

    const double coremark =
        std::find_if(rows.begin(), rows.end(), [](const Row& row) {
            return row.name == "coremark";
        })->watts;

    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.watts > b.watts; });
    std::printf("%-26s %8s %-4s  %5s\n", "workload", "power", "", "rel");
    for (const Row& row : rows)
        bench::printBar(row.name, row.watts, coremark, "W");

    const double ga = rows.front().watts;
    double manual = 0.0;
    double cross = 0.0;
    for (const Row& row : rows) {
        if (row.name == "A15manual_stress_test")
            manual = row.watts;
        if (row.name == "A7_GA_virus(cross)")
            cross = row.watts;
    }
    bench::printNote("");
    std::printf("shape checks: GA virus is top bar: %s; "
                "GA/manual = %.3f (paper: >= 1.10); "
                "cross A7 virus weaker than A15 virus: %s\n",
                rows.front().name == "A15_GA_virus" ? "yes" : "NO",
                manual > 0 ? ga / manual : 0.0,
                cross < ga ? "yes" : "NO");
    return 0;
}
