/**
 * @file
 * Ablation — mutation-rate sensitivity (§III.A).
 *
 * The paper's guidance: the mutation rate should be low enough that
 * only one or at most two loop instructions mutate at a time (2% for
 * 50-instruction loops); higher rates impede convergence. This bench
 * sweeps the rate on the Cortex-A15 power search.
 */

#include <cstdio>

#include "common.hh"
#include "fitness/fitness.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv({40, 40});
    bench::printHeader("Ablation",
                       "mutation-rate sweep, Cortex-A15 power search",
                       scale);

    const auto plat = platform::cortexA15Platform();
    const auto& lib = plat->library();

    std::printf("%-14s %16s %16s\n", "mutation_rate",
                "avg_final_power", "expected_mut/ind");
    double best_rate = 0.0;
    double best_fitness = 0.0;
    for (double rate : {0.005, 0.02, 0.08, 0.20, 0.40}) {
        double fitness_sum = 0.0;
        for (std::uint64_t seed : {31ull, 32ull, 33ull}) {
            core::GaParams params = bench::virusParams(50, scale, seed);
            params.mutationRate = rate;
            measure::SimPowerMeasurement meas(lib, plat);
            fitness::DefaultFitness fit;
            core::Engine engine(params, lib, meas, fit);
            engine.run();
            fitness_sum += engine.bestEver().fitness;
        }
        const double avg = fitness_sum / 3.0;
        std::printf("%-14.3f %16.4f %16.1f\n", rate, avg, rate * 50.0);
        if (avg > best_fitness) {
            best_fitness = avg;
            best_rate = rate;
        }
    }
    bench::printNote("");
    std::printf("best rate in sweep: %.3f (paper: ~0.02 for "
                "50-instruction loops, i.e. ~1 mutation per "
                "individual; very high rates disrupt convergence)\n",
                best_rate);
    return 0;
}
