/**
 * @file
 * Figure 6 — Cortex-A7 power results, normalized to coremark.
 *
 * Paper shape: the A7 GA virus leads, above the hand-written A7
 * stress-test, and the A15 virus transfers poorly onto the little core.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv();
    bench::printHeader("Figure 6",
                       "Cortex-A7 power, normalized to coremark", scale);

    const auto a7 = platform::cortexA7Platform();
    const auto& lib = a7->library();

    const core::Individual virus7 = bench::a7PowerVirus(scale);
    const core::Individual virus15 = bench::a15PowerVirus(scale);

    struct Row
    {
        std::string name;
        double watts;
    };
    std::vector<Row> rows;
    rows.push_back({"A7_GA_virus",
                    a7->evaluate(virus7.code, lib).chipPowerWatts});
    rows.push_back({"A15_GA_virus(cross)",
                    a7->evaluate(virus15.code, lib).chipPowerWatts});
    for (const auto& w : workloads::armBareMetalBaselines(lib)) {
        if (w.name == "A15manual_stress_test")
            continue; // Figure 6 shows the A7's own manual test
        rows.push_back({w.name,
                        a7->evaluate(w.code, lib).chipPowerWatts});
    }

    const double coremark =
        std::find_if(rows.begin(), rows.end(), [](const Row& row) {
            return row.name == "coremark";
        })->watts;

    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.watts > b.watts; });
    std::printf("%-26s %8s %-4s  %5s\n", "workload", "power", "", "rel");
    for (const Row& row : rows)
        bench::printBar(row.name, row.watts, coremark, "W");

    const double ga = rows.front().watts;
    double manual = 0.0;
    double cross = 0.0;
    for (const Row& row : rows) {
        if (row.name == "A7manual_stress_test")
            manual = row.watts;
        if (row.name == "A15_GA_virus(cross)")
            cross = row.watts;
    }
    bench::printNote("");
    std::printf("shape checks: GA virus is top bar: %s; "
                "GA/manual = %.3f (paper: >= 1.10); "
                "cross A15 virus weaker than A7 virus: %s\n",
                rows.front().name == "A7_GA_virus" ? "yes" : "NO",
                manual > 0 ? ga / manual : 0.0,
                cross < ga ? "yes" : "NO");
    return 0;
}
