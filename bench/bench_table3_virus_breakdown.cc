/**
 * @file
 * Table III — instruction breakdown of the Cortex-A15 and Cortex-A7
 * power viruses (ShortInt / LongInt / Float-SIMD / Mem / Branch out of
 * 50 loop instructions).
 *
 * Paper row A15: 4 / 5 / 22 / 18 / 1. Paper row A7: 8 / 6 / 16 / 10 /
 * 10. The qualitative claims to reproduce: Float/SIMD dominates both;
 * the A7 virus needs many branches while the A15 virus keeps about one;
 * the A7 virus prefers slightly shorter-latency integer work.
 */

#include <cstdio>

#include "common.hh"

using namespace gest;

namespace {

void
printRow(const char* name, const isa::InstructionLibrary& lib,
         const core::Individual& virus)
{
    const auto b = core::classBreakdown(lib, virus);
    int total = 0;
    for (int count : b)
        total += count;
    // Count NOPs into the short-integer column the way the paper's
    // five-column breakdown would.
    std::printf("%-12s %8d %8d %10d %5d %7d %14d\n", name,
                b[0] + b[5], b[1], b[2], b[3], b[4], total);
}

} // namespace

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv();
    bench::printHeader(
        "Table III",
        "Instruction breakdown of the A15 and A7 power viruses", scale);

    const core::Individual virus15 = bench::a15PowerVirus(scale);
    const core::Individual virus7 = bench::a7PowerVirus(scale);

    std::printf("%-12s %8s %8s %10s %5s %7s %14s\n", "GA virus",
                "ShortInt", "LongInt", "Float/SIMD", "Mem", "Branch",
                "TotalLoopInstr");
    const auto a15 = platform::cortexA15Platform();
    const auto a7 = platform::cortexA7Platform();
    printRow("Cortex-A15", a15->library(), virus15);
    printRow("Cortex-A7", a7->library(), virus7);
    std::printf("%-12s %8d %8d %10d %5d %7d %14d   (paper)\n",
                "Cortex-A15", 4, 5, 22, 18, 1, 50);
    std::printf("%-12s %8d %8d %10d %5d %7d %14d   (paper)\n",
                "Cortex-A7", 8, 6, 16, 10, 10, 50);

    const auto b15 = core::classBreakdown(a15->library(), virus15);
    const auto b7 = core::classBreakdown(a7->library(), virus7);
    const int fp15 = b15[2];
    const int fp7 = b7[2];
    const int br15 = b15[4];
    const int br7 = b7[4];
    bench::printNote("");
    std::printf("shape checks: Float/SIMD largest A15 class: %s; "
                "A7 uses many branches (%d) vs A15 (%d): %s; "
                "FP present on both (%d, %d)\n",
                fp15 >= b15[0] && fp15 >= b15[1] && fp15 >= b15[4]
                    ? "yes"
                    : "NO",
                br7, br15, br7 > br15 + 4 ? "yes" : "NO", fp15, fp7);
    return 0;
}
