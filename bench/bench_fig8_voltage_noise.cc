/**
 * @file
 * Figure 8 — max-min (peak-to-peak) voltage noise on the AMD Athlon
 * system: the GA dI/dt virus vs Prime95-like, the AMD-stability-like
 * test and conventional workloads.
 *
 * Paper shape: the dI/dt virus clearly exceeds every other workload,
 * including the dedicated stability tests.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv();
    bench::printHeader("Figure 8",
                       "Peak-to-peak voltage noise on the Athlon X4",
                       scale);

    const auto plat = platform::athlonX4Platform();
    const auto& lib = plat->library();

    const core::Individual virus = bench::athlonDidtVirus(scale);

    struct Row
    {
        std::string name;
        double p2p;
        double watts;
    };
    std::vector<Row> rows;
    {
        const auto eval = plat->evaluate(virus.code, lib, true);
        rows.push_back({"dIdt_GA_virus", eval.peakToPeakV,
                        eval.chipPowerWatts});
    }
    for (const auto& w : workloads::x86Baselines(lib)) {
        const auto eval = plat->evaluate(w.code, lib, true);
        rows.push_back({w.name, eval.peakToPeakV, eval.chipPowerWatts});
    }

    double prime95 = 0.0;
    double stability = 0.0;
    for (const Row& row : rows) {
        if (row.name == "prime95")
            prime95 = row.p2p;
        if (row.name == "amd_stability_test")
            stability = row.p2p;
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.p2p > b.p2p; });
    std::printf("%-26s %8s %-4s  %5s   (chip power)\n", "workload",
                "p2p", "", "rel");
    for (const Row& row : rows) {
        bench::printBar(row.name, row.p2p * 1e3, stability * 1e3, "mV");
        std::printf("%62s %6.1f W\n", "", row.watts);
    }

    bench::printNote("");
    std::printf("shape checks: GA dI/dt virus is the top bar: %s; "
                "virus/prime95 = %.2fx; virus/amd_stability = %.2fx "
                "(paper: clearly above both); prime95 is a power "
                "virus, not a noise virus: %s\n",
                rows.front().name == "dIdt_GA_virus" ? "yes" : "NO",
                prime95 > 0 ? rows.front().p2p / prime95 : 0.0,
                stability > 0 ? rows.front().p2p / stability : 0.0,
                prime95 < rows.front().p2p / 1.5 ? "yes" : "NO");

    // The loop-length rule the search used.
    const int loop_len = core::GaParams::didtLoopLength(
        1.5, plat->cpu().freqGHz,
        plat->pdnModel()->config().resonanceHz());
    std::printf("loop length from the paper's rule "
                "(IPC x f_clk / f_res): %d instructions; virus has "
                "%zu\n",
                loop_len, virus.code.size());
    return 0;
}
