/**
 * @file
 * Table II — the experimental platforms, as modelled: core counts,
 * environments, stress-tests developed and measurement instruments
 * (here: the simulated instrument substituting for each).
 */

#include <cstdio>

#include "common.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv();
    bench::printHeader("Table II", "Experimental platform models", scale);

    std::printf("%-12s %-6s %-11s %-26s %s\n", "CPU", "Cores",
                "Freq (GHz)", "Stress-test developed",
                "Measurement instrument (modelled)");
    struct Row
    {
        const char* name;
        const char* virus;
        const char* instrument;
    };
    const Row rows[] = {
        {"cortex-a15", "power-virus",
         "ARM energy probe -> activity-based power model"},
        {"cortex-a7", "power-virus",
         "ARM energy probe -> activity-based power model"},
        {"xgene2", "power-virus and IPC virus",
         "i2c temp sensor -> RC thermal ladder; perf -> sim IPC"},
        {"athlon-x4", "dI/dt virus",
         "oscilloscope on sense pads -> RLC PDN model"},
    };
    for (const Row& row : rows) {
        const auto plat = platform::Platform::byName(row.name);
        std::printf("%-12s %-6d %-11.2f %-26s %s\n",
                    plat->name().c_str(), plat->chip().numCores,
                    plat->cpu().freqGHz, row.virus, row.instrument);
    }

    bench::printNote("");
    bench::printNote("Derived platform characteristics:");
    for (const std::string& name : platform::Platform::presetNames()) {
        const auto plat = platform::Platform::byName(name);
        std::printf("  %-12s idle die temp %5.1f C, Vdd %.2f V, "
                    "TJmax %5.1f C, %s\n",
                    name.c_str(), plat->idleTempC(), plat->chip().vdd,
                    plat->chip().tjMaxC,
                    plat->pdnModel()
                        ? "PDN instrumented (voltage-sense pads)"
                        : "no voltage instrumentation");
    }
    if (const auto* pdn = platform::athlonX4Platform()->pdnModel()) {
        std::printf("  athlon PDN: resonance %.1f MHz, Q %.2f, "
                    "R %.2f mOhm\n",
                    pdn->config().resonanceHz() / 1e6,
                    pdn->config().qFactor(),
                    pdn->config().resistanceOhm * 1e3);
    }
    return 0;
}
