/**
 * @file
 * Extension bench — the mechanics behind the dI/dt virus.
 *
 * Two analyses the paper asserts but cannot show without the authors'
 * oscilloscope:
 *
 * 1. Spectrum: the GA virus concentrates current energy at the PDN's
 *    resonance frequency; Prime95-like sustained burners do not.
 * 2. Multi-core phase alignment (§IV runs one virus instance per
 *    core): peak-to-peak noise is maximized when the instances are
 *    phase-aligned and drops when they are staggered — why synchronized
 *    viruses are the worst case a PDN can see.
 */

#include <cstdio>

#include "arch/simulator.hh"
#include "common.hh"
#include "pdn/spectrum.hh"
#include "power/power_model.hh"

using namespace gest;

namespace {

power::PowerTrace
coreTrace(const std::shared_ptr<const platform::Platform>& plat,
          const std::vector<isa::InstructionInstance>& code)
{
    const auto& lib = plat->library();
    arch::LoopSimulator sim(plat->cpu(), plat->initState());
    const arch::SimResult result =
        sim.runForCycles(arch::decodeBody(lib, code), 16384);
    const power::PowerModel model(plat->energy(), plat->cpu().freqGHz);
    const platform::Evaluation eval =
        plat->evaluate(code, plat->library());
    return model.trace(result, plat->chip().vdd, eval.dieTempC);
}

} // namespace

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv({40, 40});
    bench::printHeader("Extension",
                       "dI/dt mechanics: current spectrum and "
                       "multi-core phase alignment",
                       scale);

    const auto plat = platform::athlonX4Platform();
    const double f_clk = plat->cpu().freqGHz * 1e9;
    const double f_res = plat->pdnModel()->config().resonanceHz();

    const core::Individual virus = bench::athlonDidtVirus(scale);
    const auto baselines = workloads::x86Baselines(plat->library());

    // ---- 1. Current spectrum at the resonance frequency ----
    std::printf("current amplitude at the %.0f MHz resonance "
                "(chip-level, A):\n",
                f_res / 1e6);
    const std::vector<std::size_t> aligned(
        static_cast<std::size_t>(plat->chip().numCores), 0);
    double virus_amp = 0.0;
    double prime_amp = 0.0;
    auto analyze = [&](const std::string& name,
                       const std::vector<isa::InstructionInstance>&
                           code) {
        const power::PowerTrace trace = coreTrace(plat, code);
        const std::vector<double> amps =
            plat->chipCurrentWithPhases(trace, aligned);
        const double at_res = pdn::toneAmplitude(amps, f_clk, f_res);
        const double dominant =
            pdn::dominantTone(amps, f_clk, 20e6, 400e6, 96);
        std::printf("  %-22s %8.3f A   (dominant tone %.0f MHz)\n",
                    name.c_str(), at_res, dominant / 1e6);
        if (name == "dIdt_GA_virus")
            virus_amp = at_res;
        if (name == "prime95")
            prime_amp = at_res;
    };
    analyze("dIdt_GA_virus", virus.code);
    analyze("prime95", workloads::byName(baselines, "prime95").code);
    analyze("amd_stability_test",
            workloads::byName(baselines, "amd_stability_test").code);
    analyze("coremark", workloads::byName(baselines, "coremark").code);
    std::printf("  -> virus concentrates %.1fx more current energy at "
                "f_res than prime95\n",
                prime_amp > 0 ? virus_amp / prime_amp : 0.0);

    // ---- 2. Phase alignment across the four cores ----
    std::printf("\npeak-to-peak noise vs per-core phase offsets "
                "(cycles):\n");
    const power::PowerTrace trace = coreTrace(plat, virus.code);
    const int period = static_cast<int>(f_clk / f_res + 0.5);
    struct Case
    {
        const char* name;
        std::vector<std::size_t> offsets;
    };
    const Case cases[] = {
        {"aligned [0,0,0,0]", {0, 0, 0, 0}},
        {"quarter-staggered",
         {0, static_cast<std::size_t>(period / 4),
          static_cast<std::size_t>(period / 2),
          static_cast<std::size_t>(3 * period / 4)}},
        {"anti-phase pairs",
         {0, static_cast<std::size_t>(period / 2), 0,
          static_cast<std::size_t>(period / 2)}},
    };
    double aligned_p2p = 0.0;
    for (const Case& c : cases) {
        const std::vector<double> amps =
            plat->chipCurrentWithPhases(trace, c.offsets);
        const pdn::VoltageTrace volts =
            plat->pdnModel()->simulate(amps, plat->cpu().freqGHz);
        std::printf("  %-22s %8.1f mV p2p\n", c.name,
                    volts.peakToPeak() * 1e3);
        if (aligned_p2p == 0.0)
            aligned_p2p = volts.peakToPeak();
    }
    bench::printNote("");
    bench::printNote(
        "aligned instances are the PDN's worst case: staggering the "
        "cores cancels most of the resonant excitation — the reason "
        "the paper's per-core virus instances represent the "
        "conservative margining scenario.");
    return 0;
}
