/**
 * @file
 * Ablation — the dI/dt loop-length rule (§III.A).
 *
 * The paper: loop length = IPC * f_clk / f_resonance with IPC about
 * half the peak, because one loop iteration should take one PDN
 * resonance period. This bench sweeps the individual size on the
 * Athlon dI/dt search and shows the noise peak sitting at the rule's
 * prediction.
 */

#include <cstdio>

#include "common.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv({40, 40});
    bench::printHeader("Ablation",
                       "dI/dt loop-length sweep vs the paper's rule",
                       scale);

    const auto plat = platform::athlonX4Platform();
    const int predicted = core::GaParams::didtLoopLength(
        1.5, plat->cpu().freqGHz,
        plat->pdnModel()->config().resonanceHz());

    std::printf("resonance %.1f MHz at %.1f GHz -> rule predicts "
                "%d instructions (IPC=1.5)\n\n",
                plat->pdnModel()->config().resonanceHz() / 1e6,
                plat->cpu().freqGHz, predicted);

    // The resonance period in CPU cycles: what one loop iteration
    // should take for maximum noise.
    const double resonance_cycles =
        plat->cpu().freqGHz * 1e9 /
        plat->pdnModel()->config().resonanceHz();

    std::printf("%-10s %16s %8s %16s\n", "loop_len", "best_p2p_mV",
                "IPC", "cycles_per_iter");
    double best_noise = 0.0;
    int best_len = 0;
    double best_cycles_per_iter = 0.0;
    for (int len : {8, 16, 24, 32, 40, 47, 56, 72, 96}) {
        core::GaParams params = bench::virusParams(
            len, scale, 4000 + static_cast<std::uint64_t>(len));
        const core::Individual virus = bench::evolveVirus(
            plat, bench::Target::VoltageNoise, params);
        const platform::Evaluation eval =
            plat->evaluate(virus.code, plat->library());
        const double cycles_per_iter =
            static_cast<double>(len + 1) / eval.ipc;
        const double noise = virus.fitness * 1e3;
        std::printf("%-10d %16.2f %8.2f %16.1f %s\n", len, noise,
                    eval.ipc, cycles_per_iter,
                    len == predicted ? "  <- rule" : "");
        if (noise > best_noise) {
            best_noise = noise;
            best_len = len;
            best_cycles_per_iter = cycles_per_iter;
        }
    }

    bench::printNote("");
    std::printf(
        "resonance period is %.1f cycles; the best length (%d "
        "instructions) runs at %.1f cycles/iteration — the GA tunes "
        "the loop so one iteration spans one resonance period, which "
        "is exactly the physics behind the paper's rule (the rule's "
        "%d-instruction prediction assumes IPC 1.5; lengths whose "
        "*achieved* IPC also lands on the period do equally well)\n",
        resonance_cycles, best_len, best_cycles_per_iter, predicted);
    return 0;
}
