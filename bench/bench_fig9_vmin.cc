/**
 * @file
 * Figure 9 — V_MIN per workload on the AMD Athlon system.
 *
 * The paper characterizes each workload's V_MIN by lowering the supply
 * in 12.5 mV steps at a fixed 3.1 GHz until execution fails. Here the
 * failure criterion is the die voltage dipping below the critical
 * timing voltage. Paper shape: the dI/dt virus has the highest V_MIN
 * (it fails first), above the AMD stability test and Prime95; plain
 * benchmarks tolerate the lowest voltages.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "arch/simulator.hh"
#include "common.hh"
#include "power/power_model.hh"

using namespace gest;

namespace {

std::vector<double>
chipCurrentFor(const std::shared_ptr<const platform::Platform>& plat,
               const std::vector<isa::InstructionInstance>& code)
{
    const auto& lib = plat->library();
    arch::LoopSimulator sim(plat->cpu(), plat->initState());
    const arch::SimResult result =
        sim.runForCycles(arch::decodeBody(lib, code), 8192);
    const power::PowerModel model(plat->energy(), plat->cpu().freqGHz);
    const platform::Evaluation eval = plat->evaluate(code, lib);
    const power::PowerTrace trace =
        model.trace(result, plat->chip().vdd, eval.dieTempC);
    return plat->chipCurrent(trace);
}

} // namespace

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv();
    bench::printHeader("Figure 9",
                       "V_MIN per workload, 12.5 mV steps @ 3.1 GHz",
                       scale);

    const auto plat = platform::athlonX4Platform();
    const auto& lib = plat->library();
    const pdn::PdnModel& pdn_model = *plat->pdnModel();

    pdn::VminConfig vcfg;
    vcfg.vNominal = plat->chip().vdd;
    vcfg.vCritical = 1.150;
    vcfg.stepVolts = 0.0125;
    const pdn::VminModel vmin(pdn_model, vcfg);

    const core::Individual virus = bench::athlonDidtVirus(scale);

    struct Row
    {
        std::string name;
        double vmin;
    };
    std::vector<Row> rows;
    rows.push_back({"dIdt_GA_virus",
                    vmin.characterize(chipCurrentFor(plat, virus.code),
                                      plat->cpu().freqGHz)});
    for (const auto& w : workloads::x86Baselines(lib))
        rows.push_back({w.name,
                        vmin.characterize(chipCurrentFor(plat, w.code),
                                          plat->cpu().freqGHz)});

    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.vmin > b.vmin; });
    std::printf("%-26s %8s    (supply steps below nominal %.3f V)\n",
                "workload", "V_MIN", vcfg.vNominal);
    for (const Row& row : rows) {
        const int steps = static_cast<int>(
            (vcfg.vNominal - row.vmin) / vcfg.stepVolts + 0.5);
        std::printf("%-26s %7.4f V   -%d steps\n", row.name.c_str(),
                    row.vmin, steps);
    }

    double stability = 0.0;
    double prime95 = 0.0;
    for (const Row& row : rows) {
        if (row.name == "amd_stability_test")
            stability = row.vmin;
        if (row.name == "prime95")
            prime95 = row.vmin;
    }
    bench::printNote("");
    std::printf("shape checks: dIdt virus has the highest V_MIN: %s; "
                "above the AMD stability test (%.4f vs %.4f): %s; "
                "above Prime95 (%.4f): %s\n",
                rows.front().name == "dIdt_GA_virus" ? "yes" : "NO",
                rows.front().vmin, stability,
                rows.front().vmin > stability ? "yes" : "NO", prime95,
                rows.front().vmin > prime95 ? "yes" : "NO");
    return 0;
}
