/**
 * @file
 * Micro-benchmarks (google-benchmark) of the framework's hot paths:
 * instruction rendering, micro-op decoding, the timing simulator, the
 * power/PDN models, GA operators and full individual evaluation.
 * These bound the per-measurement cost that replaces the paper's
 * 5-second hardware measurement.
 */

#include <benchmark/benchmark.h>

#include "arch/simulator.hh"
#include "core/operators.hh"
#include "isa/standard_libs.hh"
#include "measure/sim_measurements.hh"
#include "pdn/pdn_model.hh"
#include "platform/platform.hh"
#include "power/power_model.hh"
#include "stats/stats.hh"
#include "xml/xml.hh"

using namespace gest;

namespace {

std::vector<isa::InstructionInstance>
randomBody(const isa::InstructionLibrary& lib, int size,
           std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<isa::InstructionInstance> code;
    for (int i = 0; i < size; ++i)
        code.push_back(lib.randomInstance(rng));
    return code;
}

void
BM_RenderInstruction(benchmark::State& state)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto code = randomBody(lib, 64, 1);
    std::size_t index = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lib.render(code[index++ % code.size()]));
    }
}
BENCHMARK(BM_RenderInstruction);

void
BM_DecodeBody50(benchmark::State& state)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto code = randomBody(lib, 50, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(arch::decodeBody(lib, code));
}
BENCHMARK(BM_DecodeBody50);

void
BM_SimulateLoop(benchmark::State& state)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body =
        arch::decodeBody(lib, randomBody(lib, 50, 3));
    arch::LoopSimulator sim(arch::cortexA15Config(), arch::InitState{});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.run(body, static_cast<std::uint64_t>(state.range(0)),
                    2));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 51);
}
BENCHMARK(BM_SimulateLoop)->Arg(16)->Arg(64)->Arg(256);

void
BM_PowerTrace(benchmark::State& state)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = arch::decodeBody(lib, randomBody(lib, 50, 4));
    arch::LoopSimulator sim(arch::cortexA15Config(), arch::InitState{});
    const arch::SimResult result = sim.runForCycles(body, 4096);
    const power::PowerModel model(power::cortexA15Energy(), 1.2);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.trace(result, 1.05, 55.0));
}
BENCHMARK(BM_PowerTrace);

void
BM_PdnSimulate(benchmark::State& state)
{
    const pdn::PdnModel model(pdn::athlonPdn());
    std::vector<double> amps(8192);
    for (std::size_t i = 0; i < amps.size(); ++i)
        amps[i] = 20.0 + 15.0 * ((i / 15) % 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.simulate(amps, 3.1));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(amps.size()));
}
BENCHMARK(BM_PdnSimulate);

void
BM_FullPowerMeasurement(benchmark::State& state)
{
    const auto plat = platform::cortexA15Platform();
    const auto& lib = plat->library();
    measure::SimPowerMeasurement meas(lib, plat);
    const auto code = randomBody(lib, 50, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(meas.measure(code));
}
BENCHMARK(BM_FullPowerMeasurement);

void
BM_FullVoltageNoiseMeasurement(benchmark::State& state)
{
    const auto plat = platform::athlonX4Platform();
    const auto& lib = plat->library();
    measure::SimVoltageNoiseMeasurement meas(lib, plat);
    const auto code = randomBody(lib, 47, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(meas.measure(code));
}
BENCHMARK(BM_FullVoltageNoiseMeasurement);

void
BM_CrossoverAndMutate(benchmark::State& state)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    core::Individual p1;
    core::Individual p2;
    p1.code = randomBody(lib, 50, 7);
    p2.code = randomBody(lib, 50, 8);
    core::GaParams params;
    Rng rng(9);
    for (auto _ : state) {
        auto [c1, c2] = core::onePointCrossover(p1, p2, rng);
        core::mutate(c1, lib, params, rng);
        core::mutate(c2, lib, params, rng);
        benchmark::DoNotOptimize(c1);
        benchmark::DoNotOptimize(c2);
    }
}
BENCHMARK(BM_CrossoverAndMutate);

void
BM_XmlParseConfig(benchmark::State& state)
{
    const std::string text = R"(
<gest_configuration>
  <ga population_size="50" individual_size="50" mutation_rate="0.02"
      crossover_operator="one_point" tournament_size="5"
      elitism="true" generations="100" seed="1"/>
  <operands>
    <operand id="mem_result" values="x2 x3 x4" type="register"/>
    <operand id="imm" min="0" max="256" stride="8" type="immediate"/>
  </operands>
</gest_configuration>
)";
    for (auto _ : state)
        benchmark::DoNotOptimize(xml::parse(text));
}
BENCHMARK(BM_XmlParseConfig);

// The observability contract: instrumentation costs one relaxed load
// per site when stats are off. These pin the per-bump and per-timer
// cost in both states so a regression is visible next to the hot-path
// numbers above.
void
BM_StatsCounterDisabled(benchmark::State& state)
{
    stats::setEnabled(false);
    stats::Counter& ctr = stats::StatsRegistry::instance().counter(
        "bench.counter", "benchmark counter");
    for (auto _ : state)
        ctr.inc();
}
BENCHMARK(BM_StatsCounterDisabled);

void
BM_StatsCounterEnabled(benchmark::State& state)
{
    stats::setEnabled(true);
    stats::Counter& ctr = stats::StatsRegistry::instance().counter(
        "bench.counter", "benchmark counter");
    for (auto _ : state)
        ctr.inc();
    stats::setEnabled(false);
}
BENCHMARK(BM_StatsCounterEnabled);

void
BM_StatsHistogramEnabled(benchmark::State& state)
{
    stats::setEnabled(true);
    stats::Histogram& hist = stats::StatsRegistry::instance().histogram(
        "bench.hist", "benchmark histogram", 0.0, 1000.0, 40);
    double v = 0.0;
    for (auto _ : state) {
        hist.sample(v);
        v += 1.0;
        if (v >= 1200.0)
            v = 0.0;
    }
    stats::setEnabled(false);
}
BENCHMARK(BM_StatsHistogramEnabled);

void
BM_ScopedTimerDisabled(benchmark::State& state)
{
    stats::setEnabled(false);
    stats::Histogram& hist = stats::StatsRegistry::instance().histogram(
        "bench.timer", "benchmark timer", 0.0, 1000.0, 40);
    for (auto _ : state) {
        stats::ScopedTimer timer(&hist);
        benchmark::DoNotOptimize(&timer);
    }
}
BENCHMARK(BM_ScopedTimerDisabled);

void
BM_ScopedTimerEnabled(benchmark::State& state)
{
    stats::setEnabled(true);
    stats::Histogram& hist = stats::StatsRegistry::instance().histogram(
        "bench.timer", "benchmark timer", 0.0, 1000.0, 40);
    for (auto _ : state) {
        stats::ScopedTimer timer(&hist);
        benchmark::DoNotOptimize(&timer);
    }
    stats::setEnabled(false);
}
BENCHMARK(BM_ScopedTimerEnabled);

} // namespace

BENCHMARK_MAIN();
