/**
 * @file
 * Micro-benchmarks (google-benchmark) of the framework's hot paths:
 * instruction rendering, micro-op decoding, the timing simulator, the
 * power/PDN models, GA operators and full individual evaluation.
 * These bound the per-measurement cost that replaces the paper's
 * 5-second hardware measurement.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/simulator.hh"
#include "attribution/coverage.hh"
#include "core/operators.hh"
#include "isa/standard_libs.hh"
#include "measure/sim_measurements.hh"
#include "pdn/pdn_model.hh"
#include "platform/platform.hh"
#include "power/power_model.hh"
#include "stats/stats.hh"
#include "xml/xml.hh"

using namespace gest;

namespace {

std::vector<isa::InstructionInstance>
randomBody(const isa::InstructionLibrary& lib, int size,
           std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<isa::InstructionInstance> code;
    for (int i = 0; i < size; ++i)
        code.push_back(lib.randomInstance(rng));
    return code;
}

void
BM_RenderInstruction(benchmark::State& state)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto code = randomBody(lib, 64, 1);
    std::size_t index = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lib.render(code[index++ % code.size()]));
    }
}
BENCHMARK(BM_RenderInstruction);

void
BM_DecodeBody50(benchmark::State& state)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto code = randomBody(lib, 50, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(arch::decodeBody(lib, code));
}
BENCHMARK(BM_DecodeBody50);

void
BM_SimulateLoop(benchmark::State& state)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body =
        arch::decodeBody(lib, randomBody(lib, 50, 3));
    arch::LoopSimulator sim(arch::cortexA15Config(), arch::InitState{});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.run(body, static_cast<std::uint64_t>(state.range(0)),
                    2));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 51);
}
BENCHMARK(BM_SimulateLoop)->Arg(16)->Arg(64)->Arg(256);

void
BM_PowerTrace(benchmark::State& state)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = arch::decodeBody(lib, randomBody(lib, 50, 4));
    arch::LoopSimulator sim(arch::cortexA15Config(), arch::InitState{});
    const arch::SimResult result = sim.runForCycles(body, 4096);
    const power::PowerModel model(power::cortexA15Energy(), 1.2);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.trace(result, 1.05, 55.0));
}
BENCHMARK(BM_PowerTrace);

void
BM_PdnSimulate(benchmark::State& state)
{
    const pdn::PdnModel model(pdn::athlonPdn());
    std::vector<double> amps(8192);
    for (std::size_t i = 0; i < amps.size(); ++i)
        amps[i] = 20.0 + 15.0 * ((i / 15) % 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.simulate(amps, 3.1));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(amps.size()));
}
BENCHMARK(BM_PdnSimulate);

void
BM_FullPowerMeasurement(benchmark::State& state)
{
    const auto plat = platform::cortexA15Platform();
    const auto& lib = plat->library();
    measure::SimPowerMeasurement meas(lib, plat);
    const auto code = randomBody(lib, 50, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(meas.measure(code));
}
BENCHMARK(BM_FullPowerMeasurement);

void
BM_FullPowerMeasurementNoSteady(benchmark::State& state)
{
    const auto plat = platform::cortexA15Platform();
    const auto& lib = plat->library();
    measure::SimPowerMeasurement meas(lib, plat);
    meas.setSteadyState(false);
    const auto code = randomBody(lib, 50, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(meas.measure(code));
}
BENCHMARK(BM_FullPowerMeasurementNoSteady);

void
BM_FullVoltageNoiseMeasurement(benchmark::State& state)
{
    const auto plat = platform::athlonX4Platform();
    const auto& lib = plat->library();
    measure::SimVoltageNoiseMeasurement meas(lib, plat);
    const auto code = randomBody(lib, 47, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(meas.measure(code));
}
BENCHMARK(BM_FullVoltageNoiseMeasurement);

void
BM_CrossoverAndMutate(benchmark::State& state)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    core::Individual p1;
    core::Individual p2;
    p1.code = randomBody(lib, 50, 7);
    p2.code = randomBody(lib, 50, 8);
    core::GaParams params;
    Rng rng(9);
    for (auto _ : state) {
        auto [c1, c2] = core::onePointCrossover(p1, p2, rng);
        core::mutate(c1, lib, params, rng);
        core::mutate(c2, lib, params, rng);
        benchmark::DoNotOptimize(c1);
        benchmark::DoNotOptimize(c2);
    }
}
BENCHMARK(BM_CrossoverAndMutate);

void
BM_XmlParseConfig(benchmark::State& state)
{
    const std::string text = R"(
<gest_configuration>
  <ga population_size="50" individual_size="50" mutation_rate="0.02"
      crossover_operator="one_point" tournament_size="5"
      elitism="true" generations="100" seed="1"/>
  <operands>
    <operand id="mem_result" values="x2 x3 x4" type="register"/>
    <operand id="imm" min="0" max="256" stride="8" type="immediate"/>
  </operands>
</gest_configuration>
)";
    for (auto _ : state)
        benchmark::DoNotOptimize(xml::parse(text));
}
BENCHMARK(BM_XmlParseConfig);

// The observability contract: instrumentation costs one relaxed load
// per site when stats are off. These pin the per-bump and per-timer
// cost in both states so a regression is visible next to the hot-path
// numbers above.
void
BM_StatsCounterDisabled(benchmark::State& state)
{
    stats::setEnabled(false);
    stats::Counter& ctr = stats::StatsRegistry::instance().counter(
        "bench.counter", "benchmark counter");
    for (auto _ : state)
        ctr.inc();
}
BENCHMARK(BM_StatsCounterDisabled);

void
BM_StatsCounterEnabled(benchmark::State& state)
{
    stats::setEnabled(true);
    stats::Counter& ctr = stats::StatsRegistry::instance().counter(
        "bench.counter", "benchmark counter");
    for (auto _ : state)
        ctr.inc();
    stats::setEnabled(false);
}
BENCHMARK(BM_StatsCounterEnabled);

void
BM_StatsHistogramEnabled(benchmark::State& state)
{
    stats::setEnabled(true);
    stats::Histogram& hist = stats::StatsRegistry::instance().histogram(
        "bench.hist", "benchmark histogram", 0.0, 1000.0, 40);
    double v = 0.0;
    for (auto _ : state) {
        hist.sample(v);
        v += 1.0;
        if (v >= 1200.0)
            v = 0.0;
    }
    stats::setEnabled(false);
}
BENCHMARK(BM_StatsHistogramEnabled);

void
BM_ScopedTimerDisabled(benchmark::State& state)
{
    stats::setEnabled(false);
    stats::Histogram& hist = stats::StatsRegistry::instance().histogram(
        "bench.timer", "benchmark timer", 0.0, 1000.0, 40);
    for (auto _ : state) {
        stats::ScopedTimer timer(&hist);
        benchmark::DoNotOptimize(&timer);
    }
}
BENCHMARK(BM_ScopedTimerDisabled);

void
BM_ScopedTimerEnabled(benchmark::State& state)
{
    stats::setEnabled(true);
    stats::Histogram& hist = stats::StatsRegistry::instance().histogram(
        "bench.timer", "benchmark timer", 0.0, 1000.0, 40);
    for (auto _ : state) {
        stats::ScopedTimer timer(&hist);
        benchmark::DoNotOptimize(&timer);
    }
    stats::setEnabled(false);
}
BENCHMARK(BM_ScopedTimerEnabled);

/**
 * CI perf smoke (`--smoke_json=<path>`): time full evaluations with
 * the steady-state fast path on and off across every shipped platform
 * and write one machine-readable BENCH_engine.json. Each platform is
 * measured at the cycle horizon its shipped config uses, over two
 * body sets: a fixed random set (dominated by aperiodic bodies, so
 * this mostly measures detector overhead) and a steady set of bodies
 * the detector actually tiles (this measures the fast-path payoff).
 * The fitness equality flags are the gating part (fast must equal
 * full bitwise); the throughput numbers are informational — CI
 * machines are too noisy to gate on absolute rates.
 */
int
runSteadySmoke(const std::string& path)
{
    using clock = std::chrono::steady_clock;
    constexpr int numBodies = 16;
    constexpr int numSteadyBodies = 8;
    constexpr int maxSteadyProbes = 400;
    constexpr double minSeconds = 0.25;

    std::ostringstream os;
    os << "{\n  \"version\": 1,\n"
       << "  \"benchmark\": \"engine_steady_smoke\",\n"
       << "  \"platforms\": [";

    bool first = true;
    bool all_identical = true;
    for (const std::string& name : platform::Platform::presetNames()) {
        const auto plat = platform::Platform::byName(name);
        const auto& lib = plat->library();
        const bool want_voltage = plat->pdnModel() != nullptr;
        // The cycle horizon each platform's shipped config measures
        // over (athlon_didt's voltage-noise measurement uses 8192,
        // xgene2_llc_stress's cache measurement 16384).
        const std::uint64_t horizon = name == "athlon-x4" ? 8192
                                      : name == "xgene2-llc"
                                          ? 16384
                                          : 4096;

        std::vector<std::vector<isa::InstructionInstance>> bodies;
        for (int i = 0; i < numBodies; ++i)
            bodies.push_back(randomBody(
                lib, 16 + (i * 13) % 45,
                static_cast<std::uint64_t>(1000 + i)));

        platform::EvalScratch fast_scratch, full_scratch;
        fast_scratch.steadyState = true;
        full_scratch.steadyState = false;
        platform::Evaluation fast, full;

        auto bitIdentical = [&]() {
            return std::memcmp(&fast.chipPowerWatts,
                               &full.chipPowerWatts,
                               sizeof(double)) == 0 &&
                   std::memcmp(&fast.ipc, &full.ipc,
                               sizeof(double)) == 0 &&
                   std::memcmp(&fast.peakToPeakV, &full.peakToPeakV,
                               sizeof(double)) == 0 &&
                   fast.sim.cycles == full.sim.cycles;
        };

        // Correctness sweep (untimed): fast must match full bitwise.
        std::uint64_t hits = 0;
        bool identical = true;
        for (const auto& code : bodies) {
            plat->evaluateInto(code, lib, want_voltage, horizon,
                               nullptr, fast_scratch, fast);
            plat->evaluateInto(code, lib, want_voltage, horizon,
                               nullptr, full_scratch, full);
            identical = identical && bitIdentical();
            if (fast.sim.steadyHit())
                ++hits;
        }

        // Steady set: probe random bodies until enough of them tile
        // at least 75% of their cycles (parity-checked as we go).
        std::vector<std::vector<isa::InstructionInstance>> steady;
        for (int i = 0; i < maxSteadyProbes &&
                        steady.size() <
                            static_cast<std::size_t>(numSteadyBodies);
             ++i) {
            auto code = randomBody(
                lib, 16 + (i * 13) % 45,
                static_cast<std::uint64_t>(77000 + i));
            plat->evaluateInto(code, lib, want_voltage, horizon,
                               nullptr, fast_scratch, fast);
            if (!fast.sim.steadyHit() ||
                fast.sim.simulatedCycles * 4 > fast.sim.cycles)
                continue;
            plat->evaluateInto(code, lib, want_voltage, horizon,
                               nullptr, full_scratch, full);
            identical = identical && bitIdentical();
            steady.push_back(std::move(code));
        }
        all_identical = all_identical && identical;

        // Throughput: evaluate a body set round-robin until the
        // clock budget is spent (buffers stay warm, like a GA
        // worker).
        auto rate =
            [&](const std::vector<std::vector<
                    isa::InstructionInstance>>& set,
                platform::EvalScratch& scratch) {
                const auto t0 = clock::now();
                int evals = 0;
                double seconds = 0.0;
                do {
                    for (const auto& code : set) {
                        plat->evaluateInto(code, lib, want_voltage,
                                           horizon, nullptr, scratch,
                                           fast);
                        ++evals;
                    }
                    seconds = std::chrono::duration<double>(
                                  clock::now() - t0)
                                  .count();
                } while (seconds < minSeconds);
                return evals / seconds;
            };
        const double fast_eps = rate(bodies, fast_scratch);
        const double full_eps = rate(bodies, full_scratch);

        // Coverage-on datapoint: the same fast-path evaluation with
        // the coverage ledger observing every body, i.e. the per-
        // evaluation cost a run with <output coverage="true"/> pays.
        attribution::CoverageLedger ledger(lib);
        double fast_cov_eps;
        {
            const auto t0 = clock::now();
            int evals = 0;
            double seconds = 0.0;
            do {
                for (const auto& code : bodies) {
                    plat->evaluateInto(code, lib, want_voltage,
                                       horizon, nullptr, fast_scratch,
                                       fast);
                    ledger.observe(code);
                    ++evals;
                }
                seconds = std::chrono::duration<double>(clock::now() -
                                                        t0)
                              .count();
            } while (seconds < minSeconds);
            fast_cov_eps = evals / seconds;
        }
        const double coverage_overhead =
            fast_cov_eps > 0.0 ? fast_eps / fast_cov_eps : 0.0;
        double steady_fast_eps = 0.0, steady_full_eps = 0.0;
        if (!steady.empty()) {
            steady_fast_eps = rate(steady, fast_scratch);
            steady_full_eps = rate(steady, full_scratch);
        }
        const double steady_speedup =
            steady_full_eps > 0.0 ? steady_fast_eps / steady_full_eps
                                  : 0.0;

        char buf[1024];
        std::snprintf(
            buf, sizeof(buf),
            "%s\n    {\"platform\": \"%s\", \"min_cycles\": %llu, "
            "\"bodies\": %d, "
            "\"steady_hits\": %llu, \"fitness_identical\": %s, "
            "\"evals_per_sec_fast\": %.1f, "
            "\"evals_per_sec_full\": %.1f, \"speedup\": %.2f, "
            "\"steady_bodies\": %zu, "
            "\"evals_per_sec_fast_steady\": %.1f, "
            "\"evals_per_sec_full_steady\": %.1f, "
            "\"speedup_steady\": %.2f, "
            "\"coverage_cells\": %llu, "
            "\"evals_per_sec_fast_cov\": %.1f, "
            "\"coverage_overhead\": %.3f}",
            first ? "" : ",", name.c_str(),
            static_cast<unsigned long long>(horizon), numBodies,
            static_cast<unsigned long long>(hits),
            identical ? "true" : "false", fast_eps, full_eps,
            full_eps > 0.0 ? fast_eps / full_eps : 0.0, steady.size(),
            steady_fast_eps, steady_full_eps, steady_speedup,
            static_cast<unsigned long long>(ledger.cellsTotal()),
            fast_cov_eps, coverage_overhead);
        os << buf;
        first = false;
        std::fprintf(stderr,
                     "%-12s hits %llu/%d  random %.2fx  steady(%zu) "
                     "%.2fx%s\n",
                     name.c_str(),
                     static_cast<unsigned long long>(hits), numBodies,
                     full_eps > 0.0 ? fast_eps / full_eps : 0.0,
                     steady.size(), steady_speedup,
                     identical ? "" : "  FITNESS MISMATCH");
    }
    os << "\n  ]\n}\n";

    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    out << os.str();
    return all_identical ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string prefix = "--smoke_json=";
        if (arg.rfind(prefix, 0) == 0)
            return runSteadySmoke(arg.substr(prefix.size()));
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
