/**
 * @file
 * Shared harness code for the figure/table reproduction binaries.
 *
 * Every bench binary regenerates one table or figure of the paper. The
 * GA scale (population, generations) defaults to a converged-but-quick
 * setting and can be raised to the paper's full scale through the
 * GEST_BENCH_POP / GEST_BENCH_GENS environment variables.
 */

#ifndef GEST_BENCH_COMMON_HH
#define GEST_BENCH_COMMON_HH

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "measure/sim_measurements.hh"
#include "platform/platform.hh"
#include "workloads/workloads.hh"

namespace gest {
namespace bench {

/** GA scale knobs, overridable from the environment. */
struct Scale
{
    int population = 50;
    int generations = 60;
};

/** Read GEST_BENCH_POP / GEST_BENCH_GENS (falling back to defaults). */
Scale scaleFromEnv(Scale defaults = {});

/** The metric a virus search optimizes. */
enum class Target
{
    Power,
    Temperature,
    Ipc,
    VoltageNoise,
};

/** GaParams preset for one virus search (paper Table I defaults). */
core::GaParams virusParams(int individual_size, const Scale& scale,
                           std::uint64_t seed);

/**
 * Run one GA virus search against a platform.
 *
 * Seeds are fixed per experiment so the Table III/IV binaries analyze
 * exactly the viruses the figure binaries measured.
 */
core::Individual evolveVirus(
    const std::shared_ptr<const platform::Platform>& plat, Target target,
    const core::GaParams& params);

/** Canonical virus searches shared between figure and table benches. */
core::Individual a15PowerVirus(const Scale& scale);
core::Individual a7PowerVirus(const Scale& scale);
core::Individual xgene2PowerVirus(const Scale& scale);
core::Individual xgene2IpcVirus(const Scale& scale);
core::Individual xgene2SimplePowerVirus(const Scale& scale);
core::Individual athlonDidtVirus(const Scale& scale);

/** Print the bench banner: which table/figure, platform, scale. */
void printHeader(const std::string& experiment,
                 const std::string& description, const Scale& scale);

/** Print one normalized result bar (the paper's figure style). */
void printBar(const std::string& name, double value, double baseline,
              const std::string& unit);

/** Print a free-form note line. */
void printNote(const std::string& text);

} // namespace bench
} // namespace gest

#endif // GEST_BENCH_COMMON_HH
