/**
 * @file
 * Table I — GA parameters and their default values, plus the derived
 * rules of thumb (§III.A): the mutation-rate rule and the dI/dt
 * loop-length rule.
 */

#include <cstdio>

#include "common.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv();
    bench::printHeader("Table I", "GA parameters (defaults)", scale);

    core::GaParams params;
    params.validate();
    std::printf("%-42s %s\n", "Parameter", "Default Value");
    std::printf("%-42s %d\n", "population_size", params.populationSize);
    std::printf("%-42s 15-50 (default %d)\n",
                "Individual Size (loop instructions)",
                params.individualSize);
    std::printf("%-42s 0.02-0.08 (default %.2f)\n", "mutation_rate",
                params.mutationRate);
    std::printf("%-42s %s\n", "crossover_operator",
                core::toString(params.crossover));
    std::printf("%-42s %s\n", "elitism (best promoted)",
                params.elitism ? "TRUE" : "FALSE");
    std::printf("%-42s %s\n", "parent_selection_method",
                core::toString(params.selection));
    std::printf("%-42s %d\n", "tournament_size", params.tournamentSize);

    bench::printNote("");
    bench::printNote("Rules of thumb (paper §III.A):");
    std::printf("  mutation rate for 50-instruction loops: %.3f "
                "(paper: 0.02)\n",
                core::GaParams::mutationRateForSize(50));
    std::printf("  mutation rate for 15-instruction loops: %.3f "
                "(paper: 0.08)\n",
                core::GaParams::mutationRateForSize(15));
    std::printf("  dI/dt loop length, IPC=1.5 @3.1GHz, 100MHz "
                "resonance: %d instructions (in the paper's 15-50 "
                "band)\n",
                core::GaParams::didtLoopLength(1.5, 3.1, 100e6));
    return 0;
}
