/**
 * @file
 * Table IV — power virus vs simple power virus (Equation 1) vs IPC
 * virus on the X-Gene2: instruction breakdown, relative IPC, relative
 * power, relative chip temperature and unique-instruction count.
 *
 * Paper rows (relative to powerVirus):
 *   powerVirus        1.00 IPC, 1.00 power, 1.00 temp, 21 unique
 *   powerVirusSimple  0.94 IPC, 0.99 power, 1.00 temp, 13 unique
 *   IPCvirus          1.12 IPC, 0.88 power, 0.94 temp, 13 unique
 */

#include <cstdio>

#include "common.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv();
    bench::printHeader("Table IV",
                       "powerVirus vs powerVirusSimple vs IPCvirus "
                       "(X-Gene2)",
                       scale);

    const auto plat = platform::xgene2Platform();
    const auto& lib = plat->library();

    const core::Individual power_virus = bench::xgene2PowerVirus(scale);
    const core::Individual simple_virus =
        bench::xgene2SimplePowerVirus(scale);
    const core::Individual ipc_virus = bench::xgene2IpcVirus(scale);

    const platform::Evaluation e_power =
        plat->evaluate(power_virus.code, lib);
    const platform::Evaluation e_simple =
        plat->evaluate(simple_virus.code, lib);
    const platform::Evaluation e_ipc =
        plat->evaluate(ipc_virus.code, lib);

    auto print_row = [&](const char* name, const core::Individual& virus,
                         const platform::Evaluation& eval) {
        const auto b = core::classBreakdown(lib, virus);
        std::printf("%-18s %8d %8d %10d %4d %7d | %8.2f %9.2f %9.2f "
                    "| %7zu\n",
                    name, b[0] + b[5], b[1], b[2], b[3], b[4],
                    eval.ipc / e_power.ipc,
                    eval.chipPowerWatts / e_power.chipPowerWatts,
                    eval.dieTempC / e_power.dieTempC,
                    core::uniqueInstructionCount(virus));
    };

    std::printf("%-18s %8s %8s %10s %4s %7s | %8s %9s %9s | %7s\n",
                "GA virus", "ShortInt", "LongInt", "Float/SIMD", "Mem",
                "Branch", "rel.IPC", "rel.Power", "rel.Temp", "unique");
    print_row("powerVirus", power_virus, e_power);
    print_row("powerVirusSimple", simple_virus, e_simple);
    print_row("IPCvirus", ipc_virus, e_ipc);
    bench::printNote("(rel.Temp is the absolute chip-temperature "
                     "ratio, like the paper's; paper: 1.00 / 1.00 / "
                     "0.94)");

    bench::printNote("");
    std::printf(
        "shape checks: IPCvirus IPC above powerVirus (%.2fx, paper "
        "1.12x): %s; IPCvirus power below powerVirus (%.2fx, paper "
        "0.88x): %s; simple virus keeps temperature (%.2fx, paper "
        "1.00x): %s; simple virus uses fewer unique instructions "
        "(%zu vs %zu, paper 13 vs 21): %s\n",
        e_ipc.ipc / e_power.ipc,
        e_ipc.ipc > e_power.ipc ? "yes" : "NO",
        e_ipc.chipPowerWatts / e_power.chipPowerWatts,
        e_ipc.chipPowerWatts < e_power.chipPowerWatts ? "yes" : "NO",
        e_simple.dieTempC / e_power.dieTempC,
        e_simple.dieTempC > e_power.dieTempC * 0.95 ? "yes" : "NO",
        core::uniqueInstructionCount(simple_virus),
        core::uniqueInstructionCount(power_virus),
        core::uniqueInstructionCount(simple_virus) <
                core::uniqueInstructionCount(power_virus)
            ? "yes"
            : "NO");
    return 0;
}
