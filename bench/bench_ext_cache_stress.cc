/**
 * @file
 * Extension bench (§VII) — cache-miss / DRAM-traffic virus generation.
 *
 * The paper's future-work sketch: optimize towards cache misses using
 * load/store definitions with various strides. This bench runs that
 * search on the X-Gene2-with-L2 platform and compares the discovered
 * virus against an L1-resident power virus and fixed-stride sweeps, so
 * the GA's stride choice is visible.
 */

#include <cstdio>

#include "common.hh"
#include "fitness/fitness.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv({40, 40});
    bench::printHeader("Extension (§VII)",
                       "LLC/DRAM stress: optimize for cache misses",
                       scale);

    const auto plat = platform::xgene2LlcPlatform();
    const isa::InstructionLibrary& lib = plat->library();

    // GA search for maximum DRAM traffic.
    core::GaParams params = bench::virusParams(30, scale, 5001);
    measure::SimCacheMissMeasurement meas(lib, plat);
    fitness::DefaultFitness fit;
    core::Engine engine(params, lib, meas, fit);
    engine.run();
    const core::Individual& virus = engine.bestEver();
    const platform::Evaluation e_virus =
        plat->evaluate(virus.code, lib, false, 16384);

    // Fixed-stride hand-written streams for comparison.
    auto strided = [&](int stride) {
        std::vector<isa::InstructionInstance> code;
        code.push_back(lib.makeInstance(
            "ADVANCE", {"x10", std::to_string(stride)}));
        code.push_back(lib.makeInstance("LDR", {"x2", "x10", "0"}));
        code.push_back(lib.makeInstance("LDR", {"x3", "x10", "64"}));
        code.push_back(lib.makeInstance("STR", {"x4", "x10", "128"}));
        return code;
    };

    std::printf("%-26s %14s %12s %12s %8s\n", "workload", "DRAM/kinstr",
                "L1_hit_rate", "L2_hit_rate", "IPC");
    auto print_eval = [&](const char* name,
                          const platform::Evaluation& eval) {
        std::printf("%-26s %14.1f %11.1f%% %11.1f%% %8.2f\n", name,
                    eval.sim.dramPerKiloInstr(),
                    eval.sim.l1HitRate() * 100.0,
                    eval.sim.l2HitRate() * 100.0, eval.ipc);
    };
    print_eval("GA_cache_miss_virus", e_virus);
    for (int stride : {64, 512, 4032}) {
        const platform::Evaluation eval =
            plat->evaluate(strided(stride), lib, false, 16384);
        print_eval(("fixed_stride_" + std::to_string(stride)).c_str(),
                   eval);
    }
    // An L1-resident loop: essentially no DRAM traffic.
    const std::vector<isa::InstructionInstance> resident = {
        lib.makeInstance("LDR", {"x2", "x10", "0"}),
        lib.makeInstance("LDR", {"x3", "x10", "64"}),
        lib.makeInstance("ADD", {"x4", "x5", "x6"}),
    };
    print_eval("L1_resident_loop",
               plat->evaluate(resident, lib, false, 16384));

    const auto breakdown = core::classBreakdown(lib, virus);
    bench::printNote("");
    std::printf("virus breakdown: %s\n",
                core::breakdownToString(breakdown).c_str());
    std::printf("shape checks: GA virus produces heavy DRAM traffic "
                "(%.1f/kinstr): %s; L1 hit rate collapses vs the "
                "resident loop: %s\n",
                e_virus.sim.dramPerKiloInstr(),
                e_virus.sim.dramPerKiloInstr() > 50.0 ? "yes" : "NO",
                e_virus.sim.l1HitRate() < 0.7 ? "yes" : "NO");
    return 0;
}
