/**
 * @file
 * Parallel-evaluation scaling and fitness-cache effectiveness on the
 * a15_power configuration (the Figure 5 search).
 *
 * Reports:
 *  1. population-evaluation wall-clock for 1/2/4/8 evaluation threads
 *     with identical seeds, plus the speedup over serial;
 *  2. a determinism check: the serial and the 4-thread run must produce
 *     bit-identical generation histories and best genomes;
 *  3. fitness-cache hit rates, both for the organic GA stream (elite
 *     survivors and duplicate crossover children) and for a
 *     duplicate-heavy seed population (the converged-population case).
 *
 * Speedup is bounded by the physical core count; the bench prints the
 * host's hardware_concurrency so the numbers can be read in context.
 */

#include <chrono>
#include <cstdio>

#include "common.hh"
#include "fitness/fitness.hh"
#include "util/thread_pool.hh"

using namespace gest;
using namespace gest::bench;

namespace {

struct RunOutcome
{
    double seconds = 0.0;
    std::vector<core::GenerationRecord> history;
    core::Individual best;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
};

RunOutcome
runSearch(const std::shared_ptr<const platform::Platform>& plat,
          const core::GaParams& params)
{
    const isa::InstructionLibrary& lib = plat->library();
    measure::SimPowerMeasurement meas(lib, plat);
    fitness::DefaultFitness fit;
    core::Engine engine(params, lib, meas, fit);

    const auto start = std::chrono::steady_clock::now();
    engine.run();
    const auto stop = std::chrono::steady_clock::now();

    RunOutcome out;
    out.seconds =
        std::chrono::duration<double>(stop - start).count();
    out.history = engine.history();
    out.best = engine.bestEver();
    out.cacheHits = engine.cacheHits();
    out.cacheMisses = engine.cacheMisses();
    return out;
}

bool
sameHistory(const std::vector<core::GenerationRecord>& a,
            const std::vector<core::GenerationRecord>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].bestFitness != b[i].bestFitness ||
            a[i].averageFitness != b[i].averageFitness ||
            a[i].bestId != b[i].bestId ||
            a[i].diversity != b[i].diversity)
            return false;
    }
    return true;
}

} // namespace

int
main()
{
    const Scale scale = scaleFromEnv({50, 12});
    printHeader("parallel scaling",
                "population evaluation throughput, a15_power search",
                scale);
    std::printf("host hardware threads: %d\n",
                util::ThreadPool::hardwareThreads());

    const auto plat = platform::cortexA15Platform();

    // --- thread scaling, cache off, identical seeds -------------------
    RunOutcome serial;
    RunOutcome four_threads;
    double serial_seconds = 0.0;
    for (int threads : {1, 2, 4, 8}) {
        core::GaParams params = virusParams(50, scale, 1);
        params.threads = threads;
        const RunOutcome out = runSearch(plat, params);
        if (threads == 1) {
            serial = out;
            serial_seconds = out.seconds;
        }
        if (threads == 4)
            four_threads = out;
        const double evals_per_s =
            static_cast<double>(scale.population * scale.generations) /
            out.seconds;
        std::printf("threads=%d  %7.3f s  %8.1f evals/s  speedup "
                    "%.2fx\n",
                    threads, out.seconds, evals_per_s,
                    serial_seconds / out.seconds);
    }

    const bool deterministic =
        sameHistory(serial.history, four_threads.history) &&
        serial.best.code == four_threads.best.code;
    printNote(std::string("determinism (serial vs 4 threads, same "
                          "seed): ") +
              (deterministic ? "IDENTICAL — PASS" : "DIVERGED — FAIL"));

    // --- fitness cache on the organic GA stream -----------------------
    {
        core::GaParams params = virusParams(50, scale, 1);
        params.fitnessCacheSize = 4096;
        const RunOutcome out = runSearch(plat, params);
        const double total =
            static_cast<double>(out.cacheHits + out.cacheMisses);
        std::printf("cache, GA stream:        %llu hits / %llu misses "
                    "(%.1f%% hit rate), %.3f s (%.2fx vs uncached "
                    "serial)\n",
                    static_cast<unsigned long long>(out.cacheHits),
                    static_cast<unsigned long long>(out.cacheMisses),
                    total > 0.0 ? 100.0 * out.cacheHits / total : 0.0,
                    out.seconds, serial_seconds / out.seconds);
        if (!sameHistory(out.history, serial.history))
            printNote("cache determinism: DIVERGED — FAIL");
        else
            printNote("cache determinism (cached vs uncached serial): "
                      "IDENTICAL — PASS");
    }

    // --- fitness cache on a converged (duplicate-heavy) population ----
    {
        const isa::InstructionLibrary& lib = plat->library();
        core::GaParams params = virusParams(50, scale, 1);
        params.fitnessCacheSize = 4096;
        core::Population seed;
        Rng rng(99);
        std::vector<isa::InstructionInstance> clone_code;
        for (int i = 0; i < params.individualSize; ++i)
            clone_code.push_back(lib.randomInstance(rng));
        for (int i = 0; i < params.populationSize; ++i) {
            core::Individual ind;
            // Four distinct genomes replicated across the population.
            Rng genome_rng(static_cast<std::uint64_t>(i % 4));
            for (int g = 0; g < params.individualSize; ++g)
                ind.code.push_back(lib.randomInstance(genome_rng));
            ind.id = static_cast<std::uint64_t>(i + 1);
            seed.individuals.push_back(std::move(ind));
        }

        measure::SimPowerMeasurement meas(lib, plat);
        fitness::DefaultFitness fit;
        core::Engine engine(params, lib, meas, fit);
        engine.setSeedPopulation(std::move(seed));
        engine.initialize();
        const core::GenerationRecord& gen0 = engine.history().front();
        const double total =
            static_cast<double>(gen0.cacheHits + gen0.cacheMisses);
        std::printf("cache, converged seed:   %llu hits / %llu misses "
                    "in generation 0 (%.1f%% hit rate)\n",
                    static_cast<unsigned long long>(gen0.cacheHits),
                    static_cast<unsigned long long>(gen0.cacheMisses),
                    total > 0.0 ? 100.0 * gen0.cacheHits / total : 0.0);
    }

    printNote("shape checks: evaluation dominates runtime, so speedup "
              "should track min(threads, physical cores); duplicate "
              "genomes must never reach the simulator twice.");
    return 0;
}
