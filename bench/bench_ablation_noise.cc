/**
 * @file
 * Ablation — measurement variability vs GA convergence (§IV).
 *
 * The paper optimizes on a single core because "less measurement
 * variability helps the GA optimization to converge faster". This bench
 * quantifies that: the same Cortex-A15 power search under increasing
 * multiplicative measurement noise. The reported "true" power of the
 * winner is re-measured noiselessly, so noise cannot inflate the score.
 */

#include <cstdio>

#include "common.hh"
#include "fitness/fitness.hh"
#include "measure/noisy_measurement.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv({40, 40});
    bench::printHeader("Ablation",
                       "measurement noise vs convergence "
                       "(single-core rationale, §IV)",
                       scale);

    const auto plat = platform::cortexA15Platform();
    const isa::InstructionLibrary& lib = plat->library();
    measure::SimPowerMeasurement truth(lib, plat);

    std::printf("%-16s %18s %22s\n", "relative_sigma",
                "true_power_of_best", "loss_vs_noiseless");
    double noiseless_power = 0.0;
    for (double sigma : {0.0, 0.02, 0.05, 0.10, 0.20}) {
        double power_sum = 0.0;
        for (std::uint64_t seed : {61ull, 62ull, 63ull}) {
            auto meas = std::make_unique<measure::SimPowerMeasurement>(
                lib, plat);
            measure::NoisyMeasurement noisy(std::move(meas), sigma,
                                            seed * 17);
            fitness::DefaultFitness fit;
            core::Engine engine(bench::virusParams(50, scale, seed),
                                lib, noisy, fit);
            engine.run();
            // Score the winner with the noiseless instrument.
            power_sum +=
                truth.measure(engine.bestEver().code).values[0];
        }
        const double avg = power_sum / 3.0;
        if (sigma == 0.0)
            noiseless_power = avg;
        std::printf("%-16.2f %18.4f %21.1f%%\n", sigma, avg,
                    (1.0 - avg / noiseless_power) * 100.0);
    }
    bench::printNote("");
    bench::printNote(
        "more measurement variability -> weaker viruses for the same "
        "budget: the quantitative version of the paper's single-core "
        "measurement advice.");
    return 0;
}
