/**
 * @file
 * Figure 7 — X-Gene2 chip temperature, normalized to bodytrack.
 *
 * Series: the GA power (temperature) virus, the GA IPC virus, and the
 * Parsec/NAS baselines. Paper shape: powerVirus is the hottest bar,
 * IPCvirus close behind, all baselines lower.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv();
    bench::printHeader("Figure 7",
                       "X-Gene2 chip temperature, normalized to "
                       "bodytrack",
                       scale);

    const auto plat = platform::xgene2Platform();
    const auto& lib = plat->library();

    const core::Individual power_virus = bench::xgene2PowerVirus(scale);
    const core::Individual ipc_virus = bench::xgene2IpcVirus(scale);

    struct Row
    {
        std::string name;
        double temp;
    };
    std::vector<Row> rows;
    rows.push_back({"powerVirus",
                    plat->evaluate(power_virus.code, lib).dieTempC});
    rows.push_back({"IPCvirus",
                    plat->evaluate(ipc_virus.code, lib).dieTempC});
    for (const auto& w : workloads::serverBaselines(lib))
        rows.push_back({w.name, plat->evaluate(w.code, lib).dieTempC});

    const double bodytrack =
        std::find_if(rows.begin(), rows.end(), [](const Row& row) {
            return row.name == "bodytrack";
        })->temp;

    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.temp > b.temp; });
    std::printf("%-26s %8s %-4s  %5s\n", "workload", "temp", "", "rel");
    for (const Row& row : rows)
        bench::printBar(row.name, row.temp, bodytrack, "C");
    std::printf("%-26s %8.3f %-4s\n", "(idle)", plat->idleTempC(), "C");

    double ipc_temp = 0.0;
    for (const Row& row : rows) {
        if (row.name == "IPCvirus")
            ipc_temp = row.temp;
    }
    bench::printNote("");
    std::printf("shape checks: powerVirus is the hottest: %s; "
                "IPCvirus raises temperature high but below "
                "powerVirus: %s\n",
                rows.front().name == "powerVirus" ? "yes" : "NO",
                ipc_temp < rows.front().temp &&
                        ipc_temp > bodytrack
                    ? "yes"
                    : "NO");
    return 0;
}
