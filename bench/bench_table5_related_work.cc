/**
 * @file
 * Table V — qualitative comparison of GA stress-test generation
 * frameworks (static content from §VII) plus where this reproduction
 * sits.
 */

#include <cstdio>

#include "common.hh"

using namespace gest;

int
main()
{
    setQuiet(true);
    const bench::Scale scale = bench::scaleFromEnv();
    bench::printHeader("Table V",
                       "Related GA frameworks (qualitative, from "
                       "paper §VII)",
                       scale);

    std::printf("%-13s %-18s %-10s %-26s %-12s %-12s\n", "Framework",
                "OptimizationType", "Language", "Evaluated-On",
                "Metrics", "Component");
    std::printf("%-13s %-18s %-10s %-26s %-12s %-12s\n", "AUDIT",
                "Instruction-Level", "x86 ISA",
                "Real-Hardware/Simulator", "dI/dt", "CPU");
    std::printf("%-13s %-18s %-10s %-26s %-12s %-12s\n", "MAMPO",
                "Abstract-Workload", "SPARC ISA", "Simulator", "power",
                "CPU+DRAM");
    std::printf("%-13s %-18s %-10s %-26s %-12s %-12s\n", "Joshi et al.",
                "Abstract-Workload", "Alpha ISA", "Simulator", "power",
                "CPU");
    std::printf("%-13s %-18s %-10s %-26s %-12s %-12s\n", "Powermark",
                "Abstract-Workload", "C", "Real-Hardware", "power",
                "Full-System");
    std::printf("%-13s %-18s %-10s %-26s %-12s %-12s\n", "GeST",
                "Instruction-Level", "ARM,x86", "Real-Hardware",
                "dI/dt,power", "CPU");
    std::printf("%-13s %-18s %-10s %-26s %-12s %-12s\n", "GeST++ (this)",
                "Instruction-Level", "ARM,x86",
                "Simulated HW (+native)", "dI/dt,power,T,IPC", "CPU");

    bench::printNote("");
    bench::printNote(
        "This reproduction keeps GeST's instruction-level optimization: "
        "the GA owns the instruction mix, order and operands directly, "
        "which abstract-workload models cannot control (the paper cites "
        "up to 17% power difference from instruction order alone).");
    return 0;
}
